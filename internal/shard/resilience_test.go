package shard

// Self-healing behaviours of the tier, tested at two levels: white-box
// unit tests over a scripted in-memory network (epoch fencing, retry
// quarantine, dead-ring fallback — where exact packet injection matters),
// and end-to-end TCP tests for the rejoin story (kill a worker process,
// restart it on a fresh port, watch the coordinator re-admit and re-route).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gametree/internal/engine"
	"gametree/internal/faultnet"
	"gametree/internal/telemetry"
	"gametree/internal/transport"
)

// fakeNet is a scripted network: sends are recorded, never delivered,
// and the test injects inbound packets directly into the coordinator's
// handler. Workers exist only as the packets the test forges for them.
type fakeNet struct {
	mu      sync.Mutex
	deliver func(faultnet.Packet)
	sent    []faultnet.Packet
}

func (f *fakeNet) Start(d func(faultnet.Packet)) { f.deliver = d }

func (f *fakeNet) Send(pkt faultnet.Packet) {
	f.mu.Lock()
	f.sent = append(f.sent, pkt)
	f.mu.Unlock()
}

func (f *fakeNet) Alive(int) bool                     { return true }
func (f *fakeNet) StalledUntil(int) (time.Time, bool) { return time.Time{}, false }
func (f *fakeNet) Close()                             {}
func (f *fakeNet) Stats() faultnet.Stats              { return faultnet.Stats{} }

func (f *fakeNet) inject(pkt faultnet.Packet) { f.deliver(pkt) }

// TestEpochFencing pins the tier's fencing invariant: a result stamped
// with an epoch below the task's current issue epoch is discarded, never
// folded — and the fresh-epoch answer that follows settles normally. The
// membership change is forced by a forged ping whose boot nonce flips,
// the restart signature a rejoined process produces.
func TestEpochFencing(t *testing.T) {
	fn := &fakeNet{}
	coord := NewCoordinator(Config{
		Net:         fn,
		Self:        0,
		Workers:     []int{1},
		TaskTimeout: 30 * time.Millisecond,
		DeadAfter:   10 * time.Second,
		HelloEvery:  time.Hour,
		RetryBudget: 1000, // the test settles tasks by hand; never quarantine
	})
	coord.Start()
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	type outcome struct {
		res engine.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := coord.Search(ctx, "random", "3:2", 3)
		done <- outcome{res, err}
	}()

	// Wait for the leaves to be dispatched (random 3:2 has two children).
	waitUntil(t, 10*time.Second, func() bool { return coord.Pending() == 2 })
	var ids []uint64
	coord.mu.Lock()
	for id := range coord.pending {
		ids = append(ids, id)
	}
	coord.mu.Unlock()
	if ids[0] > ids[1] {
		ids[0], ids[1] = ids[1], ids[0] // ids are assigned in child order
	}

	// Two pings from worker 1 with different boot nonces: the second is a
	// restart signature, bumping the membership epoch to 2.
	fn.inject(faultnet.Packet{From: 1, To: 0, Payload: &Envelope{Kind: KindPing, Boot: 111}})
	fn.inject(faultnet.Packet{From: 1, To: 0, Payload: &Envelope{Kind: KindPing, Boot: 222}})
	if got := coord.Epoch(); got != 2 {
		t.Fatalf("epoch after forged restart = %d, want 2", got)
	}
	if got := coord.Rejoins(); got != 1 {
		t.Fatalf("rejoins = %d, want 1", got)
	}
	// A ping from a non-member must not move the epoch.
	fn.inject(faultnet.Packet{From: 99, To: 0, Payload: &Envelope{Kind: KindPing, Boot: 333}})
	if got := coord.Epoch(); got != 2 {
		t.Fatalf("epoch moved to %d on a foreign ping", got)
	}

	// Wait for the reissue loop to restamp both tasks at epoch 2.
	waitUntil(t, 10*time.Second, func() bool {
		coord.mu.Lock()
		defer coord.mu.Unlock()
		for _, id := range ids {
			if p := coord.pending[id]; p == nil || p.issueEpoch != 2 {
				return false
			}
		}
		return true
	})

	// The ghost answers with the superseded epoch: both results must be
	// fenced — discarded with the tasks still pending, never folded.
	for _, id := range ids {
		fn.inject(faultnet.Packet{From: 1, To: 0, Payload: &Envelope{
			Kind: KindResult, ID: id, Epoch: 1, Value: 42, Best: 0,
		}})
	}
	if got := coord.FencedResults(); got != 2 {
		t.Fatalf("fenced = %d, want 2", got)
	}
	if got := coord.Pending(); got != 2 {
		t.Fatalf("pending = %d after fenced results, want 2 (fenced result settled a task)", got)
	}

	// Fresh-epoch answers settle the search; the folded value must come
	// from these, not the fenced 42s.
	fn.inject(faultnet.Packet{From: 1, To: 0, Payload: &Envelope{Kind: KindResult, ID: ids[0], Epoch: 2, Value: 5, Best: 0}})
	fn.inject(faultnet.Packet{From: 1, To: 0, Payload: &Envelope{Kind: KindResult, ID: ids[1], Epoch: 2, Value: 7, Best: 0}})
	out := <-done
	if out.err != nil {
		t.Fatalf("search: %v", out.err)
	}
	// Negamax fold over child values (5, 7): max(-5, -7) = -5, move 0.
	if out.res.Value != -5 || out.res.Best != 0 {
		t.Fatalf("folded (v=%d best=%d), want (v=-5 best=0) — a fenced value leaked into the fold", out.res.Value, out.res.Best)
	}
}

// TestReissueStaleDeadRingFallsBackLocal: with every worker dead and a
// fallback pool configured, the reissue path must deterministically hand
// stale tasks to local compute — exact answer, degraded counters up —
// rather than retrying into the void until quarantine.
func TestReissueStaleDeadRingFallsBackLocal(t *testing.T) {
	pool := engine.NewPoolOpt(engine.SearchOptions{Workers: 2}, 0)
	defer pool.Close()
	fn := &fakeNet{}
	coord := NewCoordinator(Config{
		Net:         fn,
		Self:        0,
		Workers:     []int{1, 2},
		TaskTimeout: 20 * time.Millisecond,
		DeadAfter:   60 * time.Millisecond,
		HelloEvery:  time.Hour,
		Fallback:    pool,
	})
	coord.Start()
	defer coord.Close()

	// Workers start presumed alive, so the dispatch goes to the ring; no
	// ping ever arrives, the ring dies under the tasks, and reissue must
	// divert them to the pool.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	want := reference(t, "random", "5:3", 4)
	got, err := coord.Search(ctx, "random", "5:3", 4)
	if err != nil {
		t.Fatalf("degraded search: %v", err)
	}
	if got.Value != want.Value || got.Best != want.Best {
		t.Fatalf("degraded search (v=%d best=%d), sequential (v=%d best=%d)", got.Value, got.Best, want.Value, want.Best)
	}
	if coord.DegradedTasks() == 0 {
		t.Error("no tasks recorded as degraded")
	}
	if !coord.DegradedMode() {
		t.Error("ring fully dead but DegradedMode reports false")
	}
	if coord.Pending() != 0 {
		t.Errorf("%d tasks left pending", coord.Pending())
	}

	// With the ring known-dead up front, dispatch skips it entirely.
	before := coord.Quarantined()
	if _, err := coord.Search(ctx, "random", "6:3", 4); err != nil {
		t.Fatalf("second degraded search: %v", err)
	}
	if coord.Quarantined() != before {
		t.Error("degraded searches burned retry budget")
	}
}

// TestQuarantineTypedError: a task that exhausts its retry budget with no
// fallback pool must settle with the typed QuarantineError, not hang or
// return a generic failure.
func TestQuarantineTypedError(t *testing.T) {
	fn := &fakeNet{}
	coord := NewCoordinator(Config{
		Net:         fn,
		Self:        0,
		Workers:     []int{1},
		TaskTimeout: 15 * time.Millisecond,
		DeadAfter:   10 * time.Second, // worker stays "alive": frames just vanish
		HelloEvery:  time.Hour,
		RetryBudget: 2,
	})
	coord.Start()
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := coord.Search(ctx, "ttt", "XXXOO....", 3)
	if err == nil {
		t.Fatal("search over a black-hole ring succeeded")
	}
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("error %v (%T), want *QuarantineError", err, err)
	}
	if qe.Attempts != 2 {
		t.Errorf("quarantined after %d attempts, want 2 (the budget)", qe.Attempts)
	}
	if qe.Key == "" || qe.Task == 0 {
		t.Errorf("quarantine error missing identity: %+v", qe)
	}
	if coord.Quarantined() == 0 {
		t.Error("quarantine not counted")
	}
	if coord.Pending() != 0 {
		t.Errorf("%d tasks left pending after quarantine", coord.Pending())
	}
}

// TestShardWorkerRejoinNewAddress is the full self-healing loop over real
// sockets: kill a worker, restart it as a new process (fresh transport on
// a fresh port, fresh boot nonce), and require the coordinator to admit
// it back — epoch bumped, rejoin counted, tasks routed to it again — with
// every search staying exact throughout.
func TestShardWorkerRejoinNewAddress(t *testing.T) {
	cl := newCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := cl.coord.Search(ctx, "random", "1:3", 5); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	epoch0 := cl.coord.Epoch()

	// Kill worker 1 and wait for the death edge.
	cl.workers[0].Close()
	waitUntil(t, 10*time.Second, func() bool { return !cl.coord.Alive(1) })

	// "Restart" it: same processor id, new port, new boot nonce. Only the
	// coordinator's address is known — exactly what a portfile restart
	// sees — so the ping's advertised address must carry the re-route.
	tr, err := transport.New(transport.Config{
		Listen: "127.0.0.1:0",
		Local:  []int{1},
		Codec:  Codec{},
	})
	if err != nil {
		t.Fatalf("restart transport: %v", err)
	}
	tr.SetPeer(0, cl.nets[0].Addr())
	rec := telemetry.NewRecorder()
	w := NewWorker(WorkerConfig{
		Net:           tr,
		Self:          1,
		Coordinator:   0,
		Workers:       []int{1, 2},
		PoolWorkers:   2,
		TableEntries:  1 << 12,
		PingEvery:     25 * time.Millisecond,
		AdvertiseAddr: tr.Addr(),
		Telemetry:     rec,
	})
	w.Start()
	t.Cleanup(w.Close)

	waitUntil(t, 10*time.Second, func() bool { return cl.coord.Alive(1) })
	if got := cl.coord.Rejoins(); got < 1 {
		t.Errorf("rejoins = %d, want >= 1", got)
	}
	// At least the rejoin bump; the death edge adds another when the
	// sweep observes the outage before the replacement's first ping.
	if got := cl.coord.Epoch(); got < epoch0+1 {
		t.Errorf("epoch = %d, want >= %d (rejoin)", got, epoch0+1)
	}

	// Post-rejoin bursts must stay exact AND reach the rejoined worker:
	// its task counter moving proves the coordinator re-routed to the new
	// address, not just marked it alive.
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; rec.Snapshot().Total.ShardTasks == 0; i++ {
		pos := fmt.Sprintf("%d:3", 200+i)
		want := reference(t, "random", pos, 5)
		got, err := cl.coord.Search(ctx, "random", pos, 5)
		if err != nil {
			t.Fatalf("post-rejoin search %q: %v", pos, err)
		}
		if got.Value != want.Value || got.Best != want.Best {
			t.Fatalf("post-rejoin %q: got (v=%d best=%d), sequential (v=%d best=%d)",
				pos, got.Value, got.Best, want.Value, want.Best)
		}
		if time.Now().After(deadline) {
			t.Fatal("no task ever routed to the rejoined worker")
		}
	}

	// The rejoined worker converges to the coordinator's epoch via hello.
	waitUntil(t, 10*time.Second, func() bool { return w.Epoch() == cl.coord.Epoch() })
}

// TestShardDegradedEmptyRingThenRecover: the single worker dies, searches
// keep answering exactly from the fallback pool with the degraded gauge
// up; a replacement worker brings the tier back to healthy routing.
func TestShardDegradedEmptyRingThenRecover(t *testing.T) {
	pool := engine.NewPoolOpt(engine.SearchOptions{Workers: 2}, 0)
	t.Cleanup(pool.Close) // registered before the cluster's: closes after the coordinator
	cl := newCluster(t, 1, func(c *Config) { c.Fallback = pool })
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := cl.coord.Search(ctx, "random", "8:3", 5); err != nil {
		t.Fatalf("healthy search: %v", err)
	}
	if cl.coord.DegradedMode() {
		t.Fatal("degraded with a live worker")
	}

	cl.workers[0].Close()
	waitUntil(t, 10*time.Second, func() bool { return cl.coord.DegradedMode() })

	for _, pos := range []string{"21:3", "22:3", "23:3"} {
		want := reference(t, "random", pos, 5)
		got, err := cl.coord.Search(ctx, "random", pos, 5)
		if err != nil {
			t.Fatalf("degraded search %q: %v", pos, err)
		}
		if got.Value != want.Value || got.Best != want.Best {
			t.Fatalf("degraded %q: got (v=%d best=%d), sequential (v=%d best=%d)",
				pos, got.Value, got.Best, want.Value, want.Best)
		}
	}
	if cl.coord.DegradedTasks() == 0 {
		t.Error("no degraded tasks counted on an empty ring")
	}

	// Recovery: a replacement worker rejoins and takes the traffic back.
	tr, err := transport.New(transport.Config{Listen: "127.0.0.1:0", Local: []int{1}, Codec: Codec{}})
	if err != nil {
		t.Fatalf("replacement transport: %v", err)
	}
	tr.SetPeer(0, cl.nets[0].Addr())
	w := NewWorker(WorkerConfig{
		Net: tr, Self: 1, Coordinator: 0, Workers: []int{1},
		PoolWorkers: 2, TableEntries: 1 << 12,
		PingEvery: 25 * time.Millisecond, AdvertiseAddr: tr.Addr(),
	})
	w.Start()
	t.Cleanup(w.Close)
	waitUntil(t, 10*time.Second, func() bool { return !cl.coord.DegradedMode() })

	before := cl.coord.DegradedTasks()
	want := reference(t, "random", "31:3", 5)
	got, err := cl.coord.Search(ctx, "random", "31:3", 5)
	if err != nil {
		t.Fatalf("post-recovery search: %v", err)
	}
	if got.Value != want.Value || got.Best != want.Best {
		t.Fatalf("post-recovery: got (v=%d best=%d), sequential (v=%d best=%d)", got.Value, got.Best, want.Value, want.Best)
	}
	if after := cl.coord.DegradedTasks(); after != before {
		t.Errorf("healthy-ring search still degraded tasks (%d -> %d)", before, after)
	}
}

// waitUntil polls cond until it holds or the deadline fails the test.
func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
