// Package shard is the distributed serving tier: a coordinator process
// that expands root positions a bounded number of plies and routes the
// frontier to worker processes by consistent hash, each worker running a
// resident engine.Pool over its own transposition table, with deep
// entries shared between workers through a two-level table (local
// bucketed probe first, asynchronous remote probe to the hash's owning
// shard on a miss). Everything crosses processes over the
// internal/transport TCP realization of faultnet.Network, so the tier
// inherits the transport's lossy contract and supplies its own
// reliability: task timeout plus reissue to the ring successor at the
// coordinator, result dedup at the workers, liveness via worker pings.
package shard

import (
	"fmt"
	"sort"
)

// splitmix64 is the avalanche mix behind vnode placement — a local copy
// (games has one too) so the ring does not import a game package.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64a hashes a task key string (the canonical position form) onto the
// ring's keyspace.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ringVnodes is the number of virtual nodes per processor: enough that
// the keyspace split between a handful of workers is within a few
// percent of even, few enough that the ring stays a trivial binary
// search.
const ringVnodes = 64

type vnode struct {
	hash uint64
	proc int
}

// Ring is a consistent-hash ring over processor ids. Keys map to the
// first vnode clockwise from the key's hash; when that processor is
// down, ownership passes to the next *distinct* live processor in ring
// order, so a crash moves only the dead shard's keys. A Ring is
// immutable after New — membership is fixed per deployment, liveness is
// a query-time predicate.
type Ring struct {
	vnodes []vnode
	procs  []int
}

// NewRing builds the ring. Procs must be non-empty and distinct.
func NewRing(procs []int) *Ring {
	if len(procs) == 0 {
		panic("shard: ring needs at least one processor")
	}
	seen := make(map[int]bool, len(procs))
	r := &Ring{procs: append([]int(nil), procs...)}
	for _, p := range procs {
		if seen[p] {
			panic(fmt.Sprintf("shard: duplicate processor %d in ring", p))
		}
		seen[p] = true
		for v := 0; v < ringVnodes; v++ {
			h := splitmix64(uint64(uint32(p))<<32 | uint64(v))
			r.vnodes = append(r.vnodes, vnode{hash: h, proc: p})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
	return r
}

// Procs returns the ring membership (a copy).
func (r *Ring) Procs() []int { return append([]int(nil), r.procs...) }

// Owner returns the processor owning a key hash, ignoring liveness.
func (r *Ring) Owner(key uint64) int {
	p, _ := r.walk(key, nil)
	return p
}

// OwnerString is Owner over a string key.
func (r *Ring) OwnerString(key string) int { return r.Owner(fnv64a(key)) }

// OwnerLive returns the first live processor at or after the key's ring
// position, walking distinct processors in ring order. ok is false when
// alive rejects every member.
func (r *Ring) OwnerLive(key uint64, alive func(int) bool) (proc int, ok bool) {
	return r.walk(key, alive)
}

// OwnerLiveString is OwnerLive over a string key.
func (r *Ring) OwnerLiveString(key string, alive func(int) bool) (int, bool) {
	return r.OwnerLive(fnv64a(key), alive)
}

func (r *Ring) walk(key uint64, alive func(int) bool) (int, bool) {
	n := len(r.vnodes)
	start := sort.Search(n, func(i int) bool { return r.vnodes[i].hash >= key }) % n
	tried := make(map[int]bool, len(r.procs))
	for i := 0; i < n && len(tried) < len(r.procs); i++ {
		p := r.vnodes[(start+i)%n].proc
		if tried[p] {
			continue
		}
		tried[p] = true
		if alive == nil || alive(p) {
			return p, true
		}
	}
	return r.vnodes[start].proc, false
}
