package shard

import "testing"

func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing([]int{1, 2, 3})
	b := NewRing([]int{1, 2, 3})
	for k := uint64(0); k < 1000; k++ {
		h := splitmix64(k)
		if a.Owner(h) != b.Owner(h) {
			t.Fatalf("rings disagree at key %d", k)
		}
	}
}

func TestRingSpread(t *testing.T) {
	r := NewRing([]int{1, 2, 3, 4})
	counts := map[int]int{}
	const n = 20000
	for k := 0; k < n; k++ {
		counts[r.Owner(splitmix64(uint64(k)))]++
	}
	for p, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("proc %d owns %.1f%% of the keyspace", p, 100*frac)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d procs own keys", len(counts))
	}
}

// TestRingCrashMovesOnlyDeadKeys is the consistent-hash property the
// tier relies on: killing one worker reroutes exactly that worker's
// keys, everything else stays put.
func TestRingCrashMovesOnlyDeadKeys(t *testing.T) {
	r := NewRing([]int{1, 2, 3})
	alive := func(p int) bool { return p != 2 }
	moved, kept := 0, 0
	for k := 0; k < 5000; k++ {
		h := splitmix64(uint64(k))
		before := r.Owner(h)
		after, ok := r.OwnerLive(h, alive)
		if !ok {
			t.Fatal("no live owner with two of three up")
		}
		if after == 2 {
			t.Fatalf("key %d routed to the dead proc", k)
		}
		if before == 2 {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %d moved from live proc %d to %d", k, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestRingAllDead(t *testing.T) {
	r := NewRing([]int{1, 2})
	if _, ok := r.OwnerLive(7, func(int) bool { return false }); ok {
		t.Error("ok=true with every proc dead")
	}
}

func TestRingStringKeys(t *testing.T) {
	r := NewRing([]int{1, 2, 3})
	if got, want := r.OwnerString("random|42:5"), r.Owner(fnv64a("random|42:5")); got != want {
		t.Errorf("OwnerString %d != Owner(fnv) %d", got, want)
	}
	// Distinct keys should not all land on one proc.
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		seen[r.OwnerString(string(rune('a'+i)))] = true
	}
	if len(seen) < 2 {
		t.Error("50 distinct string keys all routed to one proc")
	}
}
