package shard

// End-to-end tests of the tier over real TCP sockets: a coordinator and
// two workers, each with its own transport on an ephemeral 127.0.0.1
// port, exactly the multi-process topology minus the process boundary.

import (
	"context"
	"reflect"
	"testing"
	"time"

	"gametree/internal/engine"
	"gametree/internal/reqtrace"
	"gametree/internal/serve"
	"gametree/internal/telemetry"
	"gametree/internal/transport"
)

type cluster struct {
	coord       *Coordinator
	workers     []*Worker
	nets        []*transport.TCP // index 0 = coordinator
	coordRec    *telemetry.Recorder
	workRecs    []*telemetry.Recorder
	coordTracer *reqtrace.Tracer
	workTracers []*reqtrace.Tracer
}

// newCluster wires a coordinator (proc 0) and n workers (procs 1..n)
// over per-process TCP transports, with timeouts tightened for tests.
// Optional mutators adjust the coordinator config before construction.
func newCluster(t *testing.T, n int, opts ...func(*Config)) *cluster {
	t.Helper()
	cl := &cluster{}
	procs := make([]int, n)
	nets := make([]*transport.TCP, n+1)
	addrs := make(map[int]string, n+1)
	for i := 0; i <= n; i++ {
		var local int
		if i > 0 {
			local = i
			procs[i-1] = i
		}
		tr, err := transport.New(transport.Config{
			Listen: "127.0.0.1:0",
			Local:  []int{local},
			Codec:  Codec{},
		})
		if err != nil {
			t.Fatalf("transport %d: %v", i, err)
		}
		nets[i] = tr
		addrs[local] = tr.Addr()
	}
	// Full mesh: everyone knows everyone (hellos would fill this in a
	// portfile deployment; tests want determinism from the first frame).
	for i := 0; i <= n; i++ {
		for p, a := range addrs {
			if (i == 0 && p == 0) || (i > 0 && p == i) {
				continue
			}
			nets[i].SetPeer(p, a)
		}
	}
	cl.nets = nets

	for i := 1; i <= n; i++ {
		rec := telemetry.NewRecorder()
		cl.workRecs = append(cl.workRecs, rec)
		tracer := reqtrace.New(i, "worker", 0, 0)
		cl.workTracers = append(cl.workTracers, tracer)
		w := NewWorker(WorkerConfig{
			Net:           nets[i],
			Self:          i,
			Coordinator:   0,
			Workers:       procs,
			PoolWorkers:   2,
			TableEntries:  1 << 12,
			PingEvery:     25 * time.Millisecond,
			AdvertiseAddr: nets[i].Addr(),
			Telemetry:     rec,
			Tracer:        tracer,
		})
		w.Start()
		cl.workers = append(cl.workers, w)
	}
	cl.coordRec = telemetry.NewRecorder()
	cl.coordTracer = reqtrace.New(0, "coordinator", 0, 0)
	cfg := Config{
		Net:         nets[0],
		Self:        0,
		Workers:     procs,
		ExpandDepth: 1,
		TaskTimeout: 150 * time.Millisecond,
		DeadAfter:   250 * time.Millisecond,
		HelloEvery:  50 * time.Millisecond,
		PeerAddrs:   addrs,
		Telemetry:   cl.coordRec,
		Tracer:      cl.coordTracer,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	cl.coord = NewCoordinator(cfg)
	cl.coordTracer.SetOffsets(cl.coord.ClockOffsets)
	cl.coord.Start()
	t.Cleanup(func() {
		cl.coord.Close()
		for _, w := range cl.workers {
			w.Close()
		}
	})
	return cl
}

// reference runs the sequential engine on the same position.
func reference(t *testing.T, game, pos string, depth int) engine.Result {
	t.Helper()
	p, _, err := serve.ParsePosition(game, pos)
	if err != nil {
		t.Fatalf("reference parse %s %q: %v", game, pos, err)
	}
	return engine.Search(p, depth)
}

func TestShardExactValues(t *testing.T) {
	cl := newCluster(t, 2)
	cases := []struct {
		game, pos string
		depth     int
	}{
		{"ttt", "", 5},
		{"ttt", "XOX.O..X.", 4},
		{"ttt", "XXXOO....", 3}, // terminal root
		{"connect4", "33", 4},
		{"random", "42:4", 6},
		{"random", "7:3", 7},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, tc := range cases {
		want := reference(t, tc.game, tc.pos, tc.depth)
		got, err := cl.coord.Search(ctx, tc.game, tc.pos, tc.depth)
		if err != nil {
			t.Fatalf("%s %q d=%d: %v", tc.game, tc.pos, tc.depth, err)
		}
		if got.Value != want.Value || got.Best != want.Best {
			t.Errorf("%s %q d=%d: got (v=%d best=%d), sequential (v=%d best=%d)",
				tc.game, tc.pos, tc.depth, got.Value, got.Best, want.Value, want.Best)
		}
	}
	if cl.coord.Pending() != 0 {
		t.Errorf("%d tasks left pending after all searches returned", cl.coord.Pending())
	}
	if n := cl.coordRec.Snapshot().Total.ShardTasks; n == 0 {
		t.Error("coordinator recorded no shard tasks")
	}
}

func TestShardExpandDepth2(t *testing.T) {
	cl := newCluster(t, 2)
	cl.coord.cfg.ExpandDepth = 2
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, tc := range []struct {
		game, pos string
		depth     int
	}{
		{"random", "9:3", 5},
		{"ttt", "X...O....", 4},
		{"connect4", "", 3},
	} {
		want := reference(t, tc.game, tc.pos, tc.depth)
		got, err := cl.coord.Search(ctx, tc.game, tc.pos, tc.depth)
		if err != nil {
			t.Fatalf("%s %q: %v", tc.game, tc.pos, err)
		}
		if got.Value != want.Value || got.Best != want.Best {
			t.Errorf("%s %q d=%d: got (v=%d best=%d), sequential (v=%d best=%d)",
				tc.game, tc.pos, tc.depth, got.Value, got.Best, want.Value, want.Best)
		}
	}
}

// TestShardWorkerCrashReissue is the tier's reliability story: kill one
// worker's process (transport torn down, no goodbye) mid-burst and the
// coordinator must still return exact values for every search, rerouting
// the dead shard's tasks to the survivor.
func TestShardWorkerCrashReissue(t *testing.T) {
	cl := newCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Warm-up: one search with both workers up.
	if _, err := cl.coord.Search(ctx, "random", "1:3", 5); err != nil {
		t.Fatalf("warm-up: %v", err)
	}

	// Crash worker 1 the hard way: sever its sockets and stop its pings.
	// (Close on the transport alone is the closest in-process stand-in
	// for kill -9 — no protocol goodbye, connections reset.)
	cl.workers[0].Close()

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(seed int) {
			want := reference(t, "random", "100:3", 5)
			got, err := cl.coord.Search(ctx, "random", "100:3", 5)
			if err == nil && (got.Value != want.Value || got.Best != want.Best) {
				err = errValueMismatch
			}
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("search %d after crash: %v", i, err)
		}
	}
	// The failure detector needs DeadAfter of silence before it turns.
	deadline := time.Now().Add(10 * time.Second)
	for cl.coord.Alive(1) {
		if time.Now().After(deadline) {
			t.Fatal("crashed worker still considered alive after DeadAfter")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !cl.coord.Alive(2) {
		t.Error("surviving worker considered dead")
	}
}

var errValueMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "value or best-move mismatch vs sequential search" }

// TestShardRemoteTT drives the two-level table deterministically:
// install an entry at its owning worker, probe from the other worker
// through the engine-facing hook, and watch the reply land in the local
// table for the follow-up probe.
func TestShardRemoteTT(t *testing.T) {
	cl := newCluster(t, 2)
	// Find a hash owned by worker 2 (so worker 1 must go remote).
	var hash uint64
	for h := uint64(1); ; h++ {
		if cl.workers[0].ring.Owner(h) == 2 {
			hash = h
			break
		}
	}
	const depth = 9
	cl.workers[1].table.Store(hash, 77, depth, engine.BoundExact, 3)

	// First probe from worker 1: local miss, async remote probe issued.
	if _, _, _, _, ok := cl.workers[0].table.ProbeAt(hash, depth); ok {
		t.Fatal("phantom local hit before the remote reply")
	}
	// The reply must install the entry locally.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, d, _, b, ok := cl.workers[0].table.Probe(hash); ok {
			if v != 77 || d != depth || b != 3 {
				t.Fatalf("remote entry corrupted: v=%d d=%d b=%d", v, d, b)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("remote TT reply never landed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap := cl.workRecs[0].Snapshot().Total
	if snap.RemoteProbes == 0 || snap.RemoteHits == 0 {
		t.Errorf("remote counters: probes=%d hits=%d, want both > 0", snap.RemoteProbes, snap.RemoteHits)
	}

	// Deep store on worker 1 for a worker-2-owned hash must propagate.
	var hash2 uint64
	for h := hash + 1; ; h++ {
		if cl.workers[0].ring.Owner(h) == 2 {
			hash2 = h
			break
		}
	}
	cl.workers[0].table.StoreShared(hash2, -5, depth, engine.BoundLower, 1)
	for {
		if v, _, _, _, ok := cl.workers[1].table.Probe(hash2); ok {
			if v != -5 {
				t.Fatalf("forwarded store corrupted: v=%d", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("forwarded store never landed at the owner")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if cl.workRecs[0].Snapshot().Total.RemoteStores == 0 {
		t.Error("remote store not counted")
	}
}

func TestShardCodec(t *testing.T) {
	c := Codec{}
	in := &Envelope{Kind: KindTask, ID: 7, Game: "random", Pos: "42:5", Depth: 6, SentNs: 123, EchoNs: 99, Trace: "tr-1"}
	b, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*Envelope); !reflect.DeepEqual(got, in) {
		t.Errorf("round trip: got %+v want %+v", got, in)
	}
	if _, err := c.Encode("not an envelope"); err == nil {
		t.Error("encoded a non-envelope")
	}
	if _, err := c.Decode([]byte("{{")); err == nil {
		t.Error("decoded garbage")
	}
	if _, err := c.Decode([]byte(`{"kind":"nope"}`)); err == nil {
		t.Error("decoded unknown kind")
	}
}
