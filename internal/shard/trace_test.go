package shard

// Request-trace propagation through the tier: the trace ID minted at
// the serving layer must survive the wire, task reissue, and the
// worker's result dedup — and every hop must leave a span behind.

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"gametree/internal/reqtrace"
)

// findSpans returns the tracer's spans matching trace and stage.
func findSpans(t *reqtrace.Tracer, trace, stage string) []reqtrace.Span {
	spans, _ := t.Spans()
	var out []reqtrace.Span
	for _, s := range spans {
		if s.Trace == trace && s.Stage == stage {
			out = append(out, s)
		}
	}
	return out
}

// TestShardTraceSpans drives one traced search end to end and checks
// the per-stage account: expand/route/fold once each on the
// coordinator, one rpc span per task, and worker queue+compute spans
// covering every task — all carrying the one trace ID.
func TestShardTraceSpans(t *testing.T) {
	cl := newCluster(t, 2)
	const trace = "tr-e2e"
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ctx = reqtrace.NewContext(ctx, trace)

	want := reference(t, "random", "42:6", 4)
	got, err := cl.coord.Search(ctx, "random", "42:6", 4)
	if err != nil {
		t.Fatalf("traced search: %v", err)
	}
	if got.Value != want.Value || got.Best != want.Best {
		t.Fatalf("traced search diverged: got (v=%d best=%d) want (v=%d best=%d)",
			got.Value, got.Best, want.Value, want.Best)
	}

	for _, stage := range []string{reqtrace.StageExpand, reqtrace.StageRoute, reqtrace.StageFold} {
		if n := len(findSpans(cl.coordTracer, trace, stage)); n != 1 {
			t.Errorf("coordinator %s spans: got %d, want 1", stage, n)
		}
	}
	rpcs := findSpans(cl.coordTracer, trace, reqtrace.StageRPC)
	if len(rpcs) != 6 { // "42:6" has 6 root children at expand depth 1
		t.Errorf("rpc spans: got %d, want 6", len(rpcs))
	}
	for _, s := range rpcs {
		if s.Worker == 0 || s.Task == 0 {
			t.Errorf("rpc span missing worker/task: %+v", s)
		}
	}
	// The compute span is recorded as the worker's runTask unwinds, which
	// can trail the result delivery; poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var computes, queues int
		for _, wt := range cl.workTracers {
			computes += len(findSpans(wt, trace, reqtrace.StageCompute))
			queues += len(findSpans(wt, trace, reqtrace.StageQueue))
		}
		if computes == 6 && queues == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker spans: computes=%d queues=%d, want 6 each", computes, queues)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// An untraced search must add nothing.
	before := spanCount(cl.coordTracer)
	if _, err := cl.coord.Search(context.Background(), "random", "43:4", 3); err != nil {
		t.Fatalf("untraced search: %v", err)
	}
	if after := spanCount(cl.coordTracer); after != before {
		t.Errorf("untraced search recorded %d spans", after-before)
	}
}

func spanCount(tr *reqtrace.Tracer) int {
	spans, _ := tr.Spans()
	return len(spans)
}

// TestShardTraceReissueAndDoneCache plants a stale pending task and lets
// the reissue machinery resend it: the resent envelope must carry the
// ORIGINAL trace ID (the worker's compute span proves it crossed the
// wire), and a second reissue after completion must be answered from the
// worker's done-cache with a span stamping the dedup.
func TestShardTraceReissueAndDoneCache(t *testing.T) {
	cl := newCluster(t, 2)
	const trace = "tr-reissue"
	stale := time.Now().Add(-time.Second)
	env := &Envelope{Kind: KindTask, ID: 424242, Game: "random", Pos: "3:3", Depth: 2, Trace: trace}
	p := &pendingTask{
		env: env, key: "random|3:3", to: 1,
		sentAt: stale, first: stale, firstWall: stale.UnixNano(),
		done: make(chan struct{}),
	}
	cl.coord.mu.Lock()
	cl.coord.pending[env.ID] = p
	cl.coord.mu.Unlock()

	cl.coord.reissueStale()

	reissues := findSpans(cl.coordTracer, trace, reqtrace.StageReissue)
	if len(reissues) != 1 {
		t.Fatalf("reissue spans: got %d, want 1", len(reissues))
	}
	if reissues[0].Task != env.ID {
		t.Errorf("reissue span task: got %d, want %d", reissues[0].Task, env.ID)
	}

	// The worker that received the reissued copy computes it under the
	// original trace and answers; the coordinator settles the flight.
	select {
	case <-p.done:
	case <-time.After(20 * time.Second):
		t.Fatal("reissued task never completed")
	}
	computedBy := -1
	computeDeadline := time.Now().Add(10 * time.Second)
	for computedBy < 0 {
		for i, wt := range cl.workTracers {
			if n := len(findSpans(wt, trace, reqtrace.StageCompute)); n == 1 {
				computedBy = i
			}
		}
		if computedBy < 0 {
			if time.Now().After(computeDeadline) {
				t.Fatal("no worker recorded a compute span with the original trace ID")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Deliver the same task again: the worker's done-cache must answer
	// without recomputing and stamp the span as a replay.
	cl.workers[computedBy].acceptTask(env)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if spans := findSpans(cl.workTracers[computedBy], trace, reqtrace.StageDoneCache); len(spans) == 1 {
			if spans[0].Note != "replayed" {
				t.Errorf("done-cache span note: got %q, want \"replayed\"", spans[0].Note)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("done-cache span never recorded")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := len(findSpans(cl.workTracers[computedBy], trace, reqtrace.StageCompute)); n != 1 {
		t.Errorf("duplicate was recomputed: %d compute spans", n)
	}
}

// TestShardClockOffsets waits for the hello→pong echo cycle to produce
// offset estimates for every worker; same-host clocks must come out
// within a loose bound and the estimates must ride the trace dump.
func TestShardClockOffsets(t *testing.T) {
	cl := newCluster(t, 2)
	deadline := time.Now().Add(10 * time.Second)
	var offs map[int]reqtrace.Offset
	for {
		offs = cl.coord.ClockOffsets()
		if len(offs) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("offset estimates incomplete after 10s: %v", offs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for p, o := range offs {
		if o.RTTNs < 0 || o.RTTNs > time.Second.Nanoseconds() {
			t.Errorf("proc %d: implausible RTT %dns", p, o.RTTNs)
		}
		if o.OffsetNs > time.Second.Nanoseconds() || o.OffsetNs < -time.Second.Nanoseconds() {
			t.Errorf("proc %d: implausible same-host offset %dns", p, o.OffsetNs)
		}
	}
	d := cl.coordTracer.DumpState()
	if len(d.Offsets) != 2 {
		t.Errorf("dump offsets: got %d, want 2", len(d.Offsets))
	}
}

// TestShardPromSections checks the ring/liveness/recovery gauges both
// roles contribute to /metrics.
func TestShardPromSections(t *testing.T) {
	cl := newCluster(t, 2)
	var buf bytes.Buffer
	if err := cl.coord.PromSection()(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"gametree_shard_ring_size 2",
		`gametree_shard_ring_member{proc="1"} 1`,
		`gametree_shard_worker_alive{proc="1"} 1`,
		`gametree_shard_worker_alive{proc="2"} 1`,
		"gametree_shard_worker_deaths_total 0",
		"gametree_shard_recovering 0",
		"gametree_shard_recovery_last_ns 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("coordinator section missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := cl.workers[0].PromSection()(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{
		"gametree_shard_ring_size 2",
		"gametree_shard_self_proc 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("worker section missing %q in:\n%s", want, out)
		}
	}
}

// TestRecoveryTracker exercises the death→p99-settled state machine
// directly: a death starts the clock, fast completions close it, and a
// second death during recovery does not restart the original epoch.
func TestRecoveryTracker(t *testing.T) {
	r := recoveryTracker{threshold: int64(time.Millisecond)}
	base := time.Unix(1000, 0).UnixNano()
	r.noteDeath(base)
	if r.deathNs != base || r.deaths != 1 {
		t.Fatalf("after death: deathNs=%d deaths=%d", r.deathNs, r.deaths)
	}
	// A second death mid-recovery keeps the original epoch.
	r.noteDeath(base + 10)
	if r.deathNs != base || r.deaths != 2 {
		t.Fatalf("second death reset the epoch: deathNs=%d deaths=%d", r.deathNs, r.deaths)
	}
	// Slow completions must not close recovery.
	for i := 0; i < recoveryMinSamples+4; i++ {
		r.observe(int64(10*time.Millisecond), base+int64(i))
	}
	if r.deathNs == 0 {
		t.Fatal("recovery declared while p99 above threshold")
	}
	// A run of fast completions brings the windowed p99 under threshold.
	end := base + int64(time.Second)
	for i := 0; i < 64; i++ {
		r.observe(int64(100*time.Microsecond), end)
	}
	if r.deathNs != 0 {
		t.Fatalf("recovery never declared: p99=%d threshold=%d", r.p99(), r.threshold)
	}
	if r.lastNs != end-base {
		t.Errorf("recovery duration: got %d, want %d", r.lastNs, end-base)
	}
}
