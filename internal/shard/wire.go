package shard

// The shard tier's wire protocol: a single JSON envelope for every
// message kind, carried as transport payloads via Codec. JSON (rather
// than the hand-packed binary of msgpass.WireCodec) because shard
// messages are low-rate — tasks, results, liveness and deep-TT traffic,
// not per-node search messages — and the operational win of being able
// to read a capture with jq outweighs the bytes.

import (
	"encoding/json"
	"fmt"
)

// Message kinds.
const (
	// KindHello is coordinator → worker: announces the full peer address
	// table so workers can open worker-to-worker TT streams, and doubles
	// as the coordinator's own liveness beacon. Sent at startup and
	// periodically.
	KindHello = "hello"
	// KindTask is coordinator → worker: search Pos (canonical, in Game)
	// to Depth and reply with a result carrying the same ID.
	KindTask = "task"
	// KindResult is worker → coordinator: the exact value of a task.
	KindResult = "result"
	// KindPing is worker → coordinator liveness.
	KindPing = "ping"
	// KindTTProbe is worker → worker: ask the owner of Hash for its
	// entry. Answered (with KindTTReply) only on a hit.
	KindTTProbe = "ttprobe"
	// KindTTReply is the owner's entry for a probed hash.
	KindTTReply = "ttreply"
	// KindTTStore is worker → worker: install a deep entry at its owner.
	KindTTStore = "ttstore"
)

// Envelope is the one message shape of the shard protocol; Kind selects
// which fields matter. Zero fields marshal away.
type Envelope struct {
	Kind string `json:"kind"`

	// Task identity and definition (task/result).
	ID    uint64 `json:"id,omitempty"`
	Game  string `json:"game,omitempty"`
	Pos   string `json:"pos,omitempty"`
	Depth int    `json:"depth,omitempty"`

	// Result payload (result, ttreply/ttstore value carriage).
	Value int32  `json:"value,omitempty"`
	Best  int    `json:"best,omitempty"`
	Nodes int64  `json:"nodes,omitempty"`
	Err   string `json:"err,omitempty"`

	// Transposition-table traffic (ttprobe/ttreply/ttstore).
	Hash uint64 `json:"hash,omitempty"`
	Flag uint64 `json:"flag,omitempty"`

	// Topology (hello): processor id → transport address.
	Peers map[string]string `json:"peers,omitempty"`

	// SentNs is the sender's clock at send time, echoed back in replies
	// so the originator can observe round-trip latency without clock
	// agreement between processes.
	SentNs int64 `json:"sent_ns,omitempty"`

	// EchoNs echoes the SentNs of the message being answered (a worker's
	// ping echoing the coordinator's hello). Paired with the answerer's
	// own SentNs it gives the receiver an NTP-style RTT and clock-offset
	// sample without any clock agreement.
	EchoNs int64 `json:"echo_ns,omitempty"`

	// Trace is the request-scoped trace ID (task/result); empty means the
	// originating request is unsampled. Reissued copies keep the original
	// ID so a task's whole retry history lands in one trace.
	Trace string `json:"trace,omitempty"`

	// Epoch is the coordinator's membership epoch (hello/task/result).
	// Tasks carry the epoch they were issued under; workers echo the
	// epoch of the latest issuance they saw for that task ID; a result
	// stamped below the task's current issue epoch is fenced off —
	// discarded, never folded. Zero means "no epoch" (pre-epoch traffic)
	// and is never fenced.
	Epoch uint64 `json:"epoch,omitempty"`

	// Boot is the sender's random per-process boot nonce (ping). A ping
	// whose Boot differs from the last one seen for that processor is a
	// restarted process, even when it reappears inside the DeadAfter
	// window.
	Boot uint64 `json:"boot,omitempty"`

	// Addr is the sender's advertised transport address (ping), so a
	// worker restarted on a fresh port can be re-routed to without a
	// portfile round trip.
	Addr string `json:"addr,omitempty"`
}

// Codec marshals *Envelope payloads for the transport. Implements
// transport.Codec structurally.
type Codec struct{}

// Encode marshals an *Envelope.
func (Codec) Encode(payload any) ([]byte, error) {
	e, ok := payload.(*Envelope)
	if !ok {
		return nil, fmt.Errorf("shard: codec got %T, want *Envelope", payload)
	}
	return json.Marshal(e)
}

// Decode unmarshals an *Envelope, rejecting malformed or unknown-kind
// frames so garbage off the wire never reaches the dispatch switch.
func (Codec) Decode(data []byte) (any, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("shard: bad envelope: %w", err)
	}
	switch e.Kind {
	case KindHello, KindTask, KindResult, KindPing, KindTTProbe, KindTTReply, KindTTStore:
		return &e, nil
	}
	return nil, fmt.Errorf("shard: unknown envelope kind %q", e.Kind)
}
