package shard

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/engine"
	"gametree/internal/faultnet"
	"gametree/internal/reqtrace"
	"gametree/internal/serve"
	"gametree/internal/telemetry"
)

// WorkerConfig parameterizes one worker process of the shard tier.
type WorkerConfig struct {
	// Net carries the shard protocol; the worker calls Start and owns
	// Close.
	Net faultnet.Network
	// Self is this worker's processor id.
	Self int
	// Coordinator is the coordinator's processor id (conventionally 0).
	Coordinator int
	// Workers lists every worker id; the ring must match the
	// coordinator's so both sides agree on TT ownership.
	Workers []int
	// PoolWorkers sizes the resident search pool (0 = GOMAXPROCS).
	PoolWorkers int
	// TableEntries sizes the local transposition table (0 disables it,
	// which also disables the remote tier).
	TableEntries int
	// SplitHorizon and SpineOnly pass through to the search pool.
	SplitHorizon int
	SpineOnly    bool
	// RemoteMinDepth gates the two-level table: probes and stores with
	// remaining depth below it stay local (default 4).
	RemoteMinDepth int
	// RemoteWindow bounds in-flight remote probes; beyond it probes are
	// skipped, never queued (default 256).
	RemoteWindow int
	// QueueLen bounds the inbound task queue (default 128); overflow
	// tasks are dropped for the coordinator to reissue.
	QueueLen int
	// PingEvery paces liveness pings to the coordinator (default 500ms).
	PingEvery time.Duration
	// AdvertiseAddr is this worker's transport address, carried in pings
	// so a coordinator can re-route to a worker restarted on a fresh port
	// without a portfile round trip. Optional.
	AdvertiseAddr string
	// Telemetry records pool counters on shards 0..PoolWorkers-1 and the
	// worker's remote-TT counters on shard PoolWorkers. Optional.
	Telemetry *telemetry.Recorder
	// Tracer records request-scoped spans (queue/compute/done-cache/
	// remote-probe) for envelopes carrying a trace ID. Optional.
	Tracer *reqtrace.Tracer

	// DoneCache bounds the result-dedup cache (default 1024 results).
	DoneCache int
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.RemoteMinDepth <= 0 {
		c.RemoteMinDepth = 4
	}
	if c.RemoteWindow <= 0 {
		c.RemoteWindow = 256
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 128
	}
	if c.PingEvery <= 0 {
		c.PingEvery = 500 * time.Millisecond
	}
	if c.DoneCache <= 0 {
		c.DoneCache = 1024
	}
	return c
}

// Worker runs a resident search pool behind the shard protocol: tasks
// arrive from the coordinator, results go back with the same ID
// (re-answered from a bounded cache when a reissued duplicate arrives),
// and the local transposition table participates in the two-level tier —
// serving ttprobe/ttstore for hashes it owns, forwarding deep local
// traffic to the owning shard through a bounded in-flight window that
// never blocks the search hot path.
type Worker struct {
	cfg   WorkerConfig
	ring  *Ring
	table *engine.Table
	pool  *engine.Pool
	tm    *telemetry.Shard

	tasks chan queuedTask

	// boot is this process's random boot nonce, stamped on every ping so
	// the coordinator can tell a restarted process from a surviving one
	// even when the restart lands inside the liveness window.
	boot uint64
	// epoch tracks the highest coordinator membership epoch seen in a
	// hello — the worker never authors epochs, only echoes them.
	epoch atomic.Uint64

	// curTrace is the trace ID of the task the (single) runLoop is
	// executing, read by remote-TT probes issued from inside the search.
	// Always holds a string; empty when idle or the task is unsampled.
	curTrace atomic.Value

	mu sync.Mutex
	// inflight maps a queued-or-running task ID to the epoch of the
	// latest issuance seen for it. A reissued duplicate updates the epoch
	// even though the task is not re-run, so the eventual result is
	// stamped with an epoch the coordinator will accept — stamping the
	// original issue epoch instead would fence every result whose task
	// was reissued across a membership change, livelocking the retry.
	inflight    map[uint64]uint64
	doneCache   map[uint64]*Envelope
	doneOrder   []uint64
	outstanding map[uint64]probeSent // remote probes in flight, by hash

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	closeMu sync.Mutex
	isClose bool
}

// queuedTask is one inbound task plus its arrival stamp: recvNs is the
// wall clock at enqueue for traced tasks (0 otherwise), so the queue
// span costs nothing on the unsampled path.
type queuedTask struct {
	env    *Envelope
	recvNs int64
}

// probeSent is one in-flight remote-TT probe's send-side state: the
// monotonic stamp feeds the RPC histogram, the wall stamp and trace (set
// only for probes issued under a traced task) feed the remote-probe span.
type probeSent struct {
	at     time.Time
	wallNs int64
	trace  string
}

// randBoot draws a random nonzero boot nonce. Zero is reserved for "no
// nonce" on the wire, so the rare zero draw (and the no-entropy fallback)
// maps to a time-derived value instead.
func randBoot() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if n := binary.BigEndian.Uint64(b[:]); n != 0 {
			return n
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// NewWorker builds a worker over an un-started network. Call Start.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	var table *engine.Table
	if cfg.TableEntries > 0 {
		table = engine.NewTable(cfg.TableEntries)
	}
	pool := engine.NewPoolOpt(engine.SearchOptions{
		Workers:      cfg.PoolWorkers,
		Table:        table,
		Telemetry:    cfg.Telemetry,
		SplitHorizon: cfg.SplitHorizon,
		SpineOnly:    cfg.SpineOnly,
	}, 0)
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{
		cfg:         cfg,
		ring:        NewRing(cfg.Workers),
		table:       table,
		pool:        pool,
		tm:          cfg.Telemetry.Shard(pool.Workers()),
		tasks:       make(chan queuedTask, cfg.QueueLen),
		boot:        randBoot(),
		inflight:    make(map[uint64]uint64),
		doneCache:   make(map[uint64]*Envelope),
		outstanding: make(map[uint64]probeSent),
		ctx:         ctx,
		cancel:      cancel,
	}
	w.curTrace.Store("")
	if table != nil {
		table.SetRemote(remoteClient{w}, cfg.RemoteMinDepth)
	}
	return w
}

// Start installs the delivery callback, announces itself with a ping,
// and spawns the task runner and ping loop.
func (w *Worker) Start() {
	w.cfg.Net.Start(w.deliver)
	w.sendPing()
	w.wg.Add(2)
	go w.runLoop()
	go w.pingLoop()
}

// Close cancels the in-flight search, stops the loops and closes the
// network. Idempotent.
func (w *Worker) Close() {
	w.closeMu.Lock()
	if w.isClose {
		w.closeMu.Unlock()
		return
	}
	w.isClose = true
	w.closeMu.Unlock()
	w.cancel()
	if w.table != nil {
		w.table.SetRemote(nil, 0)
	}
	w.pool.Close()
	w.wg.Wait()
	w.cfg.Net.Close()
}

// deliver runs on transport reader goroutines: every branch is bounded
// work — map updates, a lock-free table probe, a non-blocking Send —
// never a search and never a blocking queue put.
func (w *Worker) deliver(pkt faultnet.Packet) {
	env, ok := pkt.Payload.(*Envelope)
	if !ok {
		return
	}
	switch env.Kind {
	case KindTask:
		w.acceptTask(env)
	case KindHello:
		w.applyHello(env)
	case KindTTProbe:
		if w.table == nil {
			return
		}
		if v, d, f, b, hit := w.table.Probe(env.Hash); hit {
			w.cfg.Net.Send(faultnet.Packet{From: w.cfg.Self, To: pkt.From, Payload: &Envelope{
				Kind: KindTTReply, Hash: env.Hash,
				Value: v, Depth: d, Flag: f, Best: b,
				SentNs: env.SentNs,
			}})
		}
	case KindTTReply:
		w.mu.Lock()
		sent, waiting := w.outstanding[env.Hash]
		delete(w.outstanding, env.Hash)
		w.mu.Unlock()
		if !waiting {
			return // late or duplicate reply; window already recycled
		}
		// Plain Store: installing a reply must not re-forward it.
		w.table.Store(env.Hash, env.Value, env.Depth, env.Flag, env.Best)
		if w.tm != nil {
			w.tm.RemoteHits.Add(1)
			w.tm.Hist[telemetry.HistShardRPCNs].Observe(time.Since(sent.at).Nanoseconds())
		}
		if sent.trace != "" {
			w.cfg.Tracer.Record(reqtrace.Span{
				Trace: sent.trace, Stage: reqtrace.StageRemoteProbe,
				StartNs: sent.wallNs, DurNs: time.Now().UnixNano() - sent.wallNs,
				Note: fmt.Sprintf("hash=%x", env.Hash),
			})
		}
	case KindTTStore:
		if w.table != nil {
			w.table.Store(env.Hash, env.Value, env.Depth, env.Flag, env.Best)
		}
	}
}

// acceptTask enqueues a task, re-answers completed duplicates from the
// cache, ignores in-flight duplicates, and drops on queue overflow (the
// coordinator's reissue covers the loss).
func (w *Worker) acceptTask(env *Envelope) {
	w.mu.Lock()
	if res := w.doneCache[env.ID]; res != nil {
		// Replay under the incoming issuance's epoch, on a copy — the
		// cached envelope is shared with other replays, and restamping it
		// in place would race. Replaying the original epoch would be
		// fenced forever once the coordinator reissued across a
		// membership change.
		cp := *res
		cp.Epoch = env.Epoch
		w.mu.Unlock()
		if env.Trace != "" {
			// Stamp the dedup: a reissued duplicate answered from the
			// result cache, not recomputed.
			w.cfg.Tracer.Record(reqtrace.Span{
				Trace: env.Trace, Stage: reqtrace.StageDoneCache,
				StartNs: time.Now().UnixNano(), Task: env.ID, Note: "replayed",
			})
		}
		w.cfg.Net.Send(faultnet.Packet{From: w.cfg.Self, To: w.cfg.Coordinator, Payload: &cp})
		return
	}
	if _, running := w.inflight[env.ID]; running {
		// Already queued or computing: adopt the newer issuance's epoch so
		// the eventual result passes the coordinator's fence.
		w.inflight[env.ID] = env.Epoch
		w.mu.Unlock()
		return
	}
	w.inflight[env.ID] = env.Epoch
	w.mu.Unlock()
	qt := queuedTask{env: env}
	if env.Trace != "" {
		qt.recvNs = time.Now().UnixNano()
	}
	select {
	case w.tasks <- qt:
	default:
		w.mu.Lock()
		delete(w.inflight, env.ID)
		w.mu.Unlock()
	}
}

func (w *Worker) applyHello(env *Envelope) {
	// Adopt the hello's membership epoch, monotonically — hellos can be
	// reordered in flight, and the epoch only ever grows at its author.
	if env.Epoch != 0 {
		for {
			cur := w.epoch.Load()
			if env.Epoch <= cur || w.epoch.CompareAndSwap(cur, env.Epoch) {
				break
			}
		}
	}
	// Pong the hello: echoing its SentNs alongside our own send stamp
	// gives the coordinator an NTP-style RTT and clock-offset sample on
	// every hello round. The pong is an ordinary ping, so it also
	// freshens our liveness for free.
	if env.SentNs != 0 {
		w.cfg.Net.Send(faultnet.Packet{From: w.cfg.Self, To: w.cfg.Coordinator, Payload: &Envelope{
			Kind: KindPing, SentNs: time.Now().UnixNano(), EchoNs: env.SentNs,
			Boot: w.boot, Addr: w.cfg.AdvertiseAddr,
		}})
	}
	ps, ok := w.cfg.Net.(PeerSetter)
	if !ok {
		return
	}
	for k, addr := range env.Peers {
		proc, err := strconv.Atoi(k)
		if err != nil || proc == w.cfg.Self {
			continue
		}
		ps.SetPeer(proc, addr)
	}
}

func (w *Worker) runLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.ctx.Done():
			return
		case qt := <-w.tasks:
			w.runTask(qt)
		}
	}
}

func (w *Worker) runTask(qt queuedTask) {
	env := qt.env
	traced := env.Trace != ""
	var startWall int64
	if traced {
		startWall = time.Now().UnixNano()
		w.cfg.Tracer.Record(reqtrace.Span{
			Trace: env.Trace, Stage: reqtrace.StageQueue,
			StartNs: qt.recvNs, DurNs: startWall - qt.recvNs, Task: env.ID,
		})
		w.curTrace.Store(env.Trace)
		defer func() {
			w.curTrace.Store("")
			w.cfg.Tracer.Record(reqtrace.Span{
				Trace: env.Trace, Stage: reqtrace.StageCompute,
				StartNs: startWall, DurNs: time.Now().UnixNano() - startWall,
				Task: env.ID,
			})
		}()
	}
	res := &Envelope{Kind: KindResult, ID: env.ID}
	pos, _, err := serve.ParsePosition(env.Game, env.Pos)
	if err != nil {
		res.Err = err.Error()
	} else {
		r, serr := w.pool.Search(w.ctx, pos, env.Depth)
		if serr != nil {
			if w.ctx.Err() != nil {
				return // closing: no result, coordinator reissues elsewhere
			}
			res.Err = serr.Error()
		} else {
			res.Value, res.Best, res.Nodes = r.Value, r.Best, r.Nodes
		}
	}
	if w.tm != nil {
		w.tm.ShardTasks.Add(1)
	}
	w.mu.Lock()
	// Stamp the result with the latest issuance epoch seen for this task
	// (acceptTask keeps it fresh across reissues), not the epoch the task
	// was first queued under.
	res.Epoch = w.inflight[env.ID]
	delete(w.inflight, env.ID)
	w.doneCache[env.ID] = res
	w.doneOrder = append(w.doneOrder, env.ID)
	for len(w.doneOrder) > w.cfg.DoneCache {
		delete(w.doneCache, w.doneOrder[0])
		w.doneOrder = w.doneOrder[1:]
	}
	w.mu.Unlock()
	w.cfg.Net.Send(faultnet.Packet{From: w.cfg.Self, To: w.cfg.Coordinator, Payload: res})
}

func (w *Worker) pingLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.cfg.PingEvery)
	defer t.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-t.C:
			// A stalled processor must fall silent, not just lose frames:
			// the chaos stall models a GC-frozen or wedged process, and a
			// liveness ping escaping the freeze would defeat the
			// coordinator's false-death detection the fault exists to test.
			if _, stalled := w.cfg.Net.StalledUntil(w.cfg.Self); stalled {
				continue
			}
			w.sendPing()
		}
	}
}

func (w *Worker) sendPing() {
	w.cfg.Net.Send(faultnet.Packet{From: w.cfg.Self, To: w.cfg.Coordinator, Payload: &Envelope{
		Kind: KindPing, SentNs: time.Now().UnixNano(),
		Boot: w.boot, Addr: w.cfg.AdvertiseAddr,
	}})
}

// Epoch reports the highest coordinator membership epoch this worker has
// seen (0 until the first epoch-stamped hello arrives).
func (w *Worker) Epoch() uint64 { return w.epoch.Load() }

// PromSection publishes this worker's view of the ring (membership plus
// its own id) for telemetry.Recorder.AddPromSection, so every role's
// /metrics answers "who is in the ring" without asking the coordinator.
func (w *Worker) PromSection() func(io.Writer) error {
	return func(out io.Writer) error {
		procs := append([]int(nil), w.cfg.Workers...)
		sort.Ints(procs)
		if err := writeRingMembership(out, procs); err != nil {
			return err
		}
		if err := telemetry.PromGauge(out, "gametree_shard_epoch",
			"Latest coordinator membership epoch seen by this process.", int64(w.epoch.Load())); err != nil {
			return err
		}
		return telemetry.PromGauge(out, "gametree_shard_self_proc",
			"This process's shard processor id.", int64(w.cfg.Self))
	}
}

// remoteWindowTTL ages out probe-window slots whose replies never came
// (owner down, frame dropped), so losses cannot wedge the window shut.
const remoteWindowTTL = time.Second

// remoteClient is the engine.RemoteTT half of the two-level table: it
// forwards deep probes and stores to the hash's owning shard. Both
// methods run on the search hot path and are strictly non-blocking — a
// brief mutex for the window map, then a non-blocking transport send.
type remoteClient struct{ w *Worker }

func (r remoteClient) Probe(hash uint64, depth int) {
	w := r.w
	owner := w.ring.Owner(hash)
	if owner == w.cfg.Self {
		return
	}
	now := time.Now()
	w.mu.Lock()
	if _, dup := w.outstanding[hash]; dup {
		w.mu.Unlock()
		return
	}
	if len(w.outstanding) >= w.cfg.RemoteWindow {
		// Window full: purge aged slots, and if still full, skip.
		for h, sent := range w.outstanding {
			if now.Sub(sent.at) > remoteWindowTTL {
				delete(w.outstanding, h)
			}
		}
		if len(w.outstanding) >= w.cfg.RemoteWindow {
			w.mu.Unlock()
			if w.tm != nil {
				w.tm.RemoteSkips.Add(1)
			}
			return
		}
	}
	sent := probeSent{at: now}
	if trace, _ := w.curTrace.Load().(string); trace != "" {
		sent.trace = trace
		sent.wallNs = now.UnixNano()
	}
	w.outstanding[hash] = sent
	w.mu.Unlock()
	if w.tm != nil {
		w.tm.RemoteProbes.Add(1)
	}
	w.cfg.Net.Send(faultnet.Packet{From: w.cfg.Self, To: owner, Payload: &Envelope{
		Kind: KindTTProbe, Hash: hash, Depth: depth, SentNs: now.UnixNano(),
	}})
}

func (r remoteClient) Store(hash uint64, value int32, depth int, flag uint64, best int) {
	w := r.w
	owner := w.ring.Owner(hash)
	if owner == w.cfg.Self {
		return
	}
	if w.tm != nil {
		w.tm.RemoteStores.Add(1)
	}
	w.cfg.Net.Send(faultnet.Packet{From: w.cfg.Self, To: owner, Payload: &Envelope{
		Kind: KindTTStore, Hash: hash, Value: value, Depth: depth, Flag: flag, Best: best,
	}})
}
