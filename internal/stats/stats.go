// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming mean/variance (Welford), normal-theory
// confidence intervals, and plain-text table / CSV rendering for the
// reproduction reports.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a sample mean and variance in one pass. The zero
// value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 for an empty sample).
func (w *Welford) Mean() float64 { return w.mean }

// Min and Max return the extremes of the sample.
func (w *Welford) Min() float64 { return w.min }
func (w *Welford) Max() float64 { return w.max }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval for the mean.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Stddev() / math.Sqrt(float64(w.n))
}

func (w *Welford) String() string {
	return fmt.Sprintf("mean=%.3f ±%.3f (n=%d, min=%.3f, max=%.3f)",
		w.Mean(), w.CI95(), w.n, w.min, w.max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the data using linear
// interpolation. The input is not modified.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It panics if the slices differ in length or have fewer than 2 points.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs two equal-length samples of size >= 2")
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	n := float64(len(x))
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: LinearFit with degenerate x")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// LogLogSlope fits log(y) against log(x) and returns the exponent, the
// standard tool for checking power laws like the Theta(sqrt(p)) speedup of
// Team SOLVE. All inputs must be positive.
func LogLogSlope(x, y []float64) float64 {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: LogLogSlope needs positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	s, _ := LinearFit(lx, ly)
	return s
}

// MannWhitneyP returns the two-sided p-value of the Mann-Whitney U rank
// test for the hypothesis that x and y are drawn from the same
// distribution, using the normal approximation with midranks for ties,
// a tie-corrected variance, and a continuity correction. Benchmark
// samples are small (reps ~ 5-30) and heavy-tailed, which is exactly
// the regime where this beats a t-test: it compares ranks, so one
// GC-pause outlier cannot drag the verdict. Returns NaN if either
// sample is empty, and 1 when every observation is tied.
func MannWhitneyP(x, y []float64) float64 {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return math.NaN()
	}
	type obs struct {
		v     float64
		first bool // belongs to x
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range x {
		all = append(all, obs{v, true})
	}
	for _, v := range y {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks over tie groups; accumulate x's rank sum and the tie
	// correction term sum(t^3 - t).
	var r1, tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		rank := float64(i+j+1) / 2 // midrank, 1-based
		for k := i; k < j; k++ {
			if all[k].first {
				r1 += rank
			}
		}
		tieTerm += t*t*t - t
		i = j
	}

	f1, f2 := float64(n1), float64(n2)
	n := f1 + f2
	u1 := r1 - f1*(f1+1)/2
	mu := f1 * f2 / 2
	sigma2 := f1 * f2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return 1 // every observation tied: no evidence either way
	}
	z := u1 - mu
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(sigma2)
	return math.Erfc(math.Abs(z) / math.Sqrt2)
}
