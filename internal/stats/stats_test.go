package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("n=%d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean=%v", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("var=%v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max %v/%v", w.Min(), w.Max())
	}
	if w.CI95() <= 0 {
		t.Error("CI should be positive")
	}
	if !strings.Contains(w.String(), "mean=5") {
		t.Errorf("String(): %s", w.String())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.CI95() != 0 {
		t.Error("empty Welford should be all zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Error("single observation")
	}
}

// Property: Welford agrees with the two-pass formulas.
func TestWelfordAgainstTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			w.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Var()-v) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(data, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be modified.
	d := []float64{3, 1, 2}
	Quantile(d, 0.5)
	if d[0] != 3 || d[1] != 1 || d[2] != 2 {
		t.Error("Quantile modified its input")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	s, b := LinearFit(x, y)
	if math.Abs(s-2) > 1e-12 || math.Abs(b-1) > 1e-12 {
		t.Errorf("fit %v, %v", s, b)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x^0.5 exactly.
	x := []float64{1, 4, 16, 64, 256}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = math.Sqrt(x[i])
	}
	if got := LogLogSlope(x, y); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("slope %v, want 0.5", got)
	}
}

func TestFitPanics(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { LinearFit([]float64{1}, []float64{1}) })
	mustPanic(func() { LinearFit([]float64{1, 1}, []float64{1, 2}) })
	mustPanic(func() { LogLogSlope([]float64{0, 1}, []float64{1, 1}) })
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1", "n", "speedup")
	tb.AddRow(4, 2.5)
	tb.AddRow(8, 5.25)
	tb.AddNote("c = %.2f", 0.62)
	out := tb.String()
	for _, want := range []string{"T1", "n", "speedup", "2.5", "5.25", "note: c = 0.62", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.HasPrefix(csv, "n,speedup\n") || !strings.Contains(csv, "8,5.25") {
		t.Errorf("csv:\n%s", csv)
	}
}

func TestTrimFloat(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(2.0)
	tb.AddRow(2.5)
	tb.AddRow(0.12345)
	if tb.Rows[0][0] != "2" || tb.Rows[1][0] != "2.5" || tb.Rows[2][0] != "0.1235" {
		t.Errorf("rows: %v", tb.Rows)
	}
}

func TestRenderJSON(t *testing.T) {
	tb := NewTable("T2", "a", "b")
	tb.AddRow(1, 2.5)
	tb.AddNote("n")
	var buf bytes.Buffer
	if err := tb.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "T2" || len(decoded.Rows) != 1 || decoded.Rows[0][1] != "2.5" || decoded.Notes[0] != "n" {
		t.Errorf("decoded: %+v", decoded)
	}
}

func TestMannWhitneyP(t *testing.T) {
	// Identical samples: maximal p.
	same := []float64{1, 2, 3, 4, 5}
	if p := MannWhitneyP(same, same); p < 0.99 {
		t.Fatalf("identical samples: p=%v, want ~1", p)
	}
	// Clearly separated samples: tiny p.
	lo := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	hi := []float64{101, 102, 103, 104, 105, 106, 107, 108}
	if p := MannWhitneyP(lo, hi); p > 0.01 {
		t.Fatalf("separated samples: p=%v, want < 0.01", p)
	}
	// Symmetry: swapping the samples must not change the p-value.
	a := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	b := []float64{2, 7, 1, 8, 2, 8, 1, 8}
	pa, pb := MannWhitneyP(a, b), MannWhitneyP(b, a)
	if math.Abs(pa-pb) > 1e-12 {
		t.Fatalf("asymmetric: %v vs %v", pa, pb)
	}
	if pa <= 0 || pa > 1 {
		t.Fatalf("p out of range: %v", pa)
	}
	// All observations tied: defined as 1, not NaN.
	if p := MannWhitneyP([]float64{5, 5, 5}, []float64{5, 5}); p != 1 {
		t.Fatalf("all tied: p=%v, want 1", p)
	}
	// Empty input: NaN.
	if p := MannWhitneyP(nil, same); !math.IsNaN(p) {
		t.Fatalf("empty sample: p=%v, want NaN", p)
	}
	// A modest shift on overlapping noise: p must fall between the
	// extremes (sanity that the statistic actually discriminates).
	n1 := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	n2 := []float64{13, 14, 15, 16, 17, 18, 19, 20, 21, 22}
	p := MannWhitneyP(n1, n2)
	if p < 0.001 || p > 0.5 {
		t.Fatalf("shifted overlap: p=%v, want intermediate", p)
	}
	// Hand-computed reference (matches scipy's two-sided asymptotic
	// method with continuity): x=[1..5], y=[3..7] → rank sum 19.5,
	// U=4.5, mu=12.5, tie-corrected sigma^2=22.5, z=7.5/sqrt(22.5),
	// p = erfc(|z|/sqrt(2)) = 0.11385.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 4, 5, 6, 7}
	if p := MannWhitneyP(x, y); math.Abs(p-0.11385) > 1e-4 {
		t.Fatalf("reference case: p=%v, want ~0.11385", p)
	}
}
