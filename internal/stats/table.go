package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of strings and renders them as an aligned
// plain-text table (for terminal reports) or CSV (for plotting).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.4f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Render writes the aligned text form.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (title and notes omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("table render error: %v", err)
	}
	return b.String()
}

// RenderJSON writes the table as a JSON object with title, columns, rows
// and notes, for downstream tooling.
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.Title, t.Columns, t.Rows, t.Notes})
}
