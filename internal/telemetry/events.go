package telemetry

// Bounded structured event log. Where spans summarise a split point's
// whole lifetime, events record the individual scheduler decisions —
// split-open, join, abort, steal — as they happen, each stamped with the
// worker, the remaining depth and the recorder-epoch nanosecond. The log
// is written as JSONL (one JSON object per line), the grep-able exchange
// format; gttrace replays a log into the existing Chrome-trace path so
// the same events can be eyeballed on a timeline.
//
// Recording is off by default and costs the engine one nil-safe branch
// per site (EventsEnabled is an atomic load); when on, events append
// under the recorder mutex into a bounded buffer — past the bound they
// are counted, not stored, exactly like spans.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Event kinds. Stable strings: they are the JSONL schema.
const (
	EventSplitOpen = "split-open" // a split pushed its sibling tasks
	EventJoin      = "join"       // a split's join drained
	EventAbort     = "abort"      // a task was skipped or pre-empted
	EventSteal     = "steal"      // a worker stole a task
)

// Event is one scheduler event. Ns is Recorder.Now() nanoseconds
// (monotonic since the recorder's epoch).
type Event struct {
	Ns     int64  `json:"ns"`
	Kind   string `json:"kind"`
	Worker int    `json:"worker"`
	Depth  int    `json:"depth,omitempty"` // remaining search depth at the event
	Tasks  int    `json:"tasks,omitempty"` // sibling tasks (split-open/join)
}

// defaultMaxEvents bounds the event buffer; a deep instrumented search
// emits orders of magnitude more events than spans.
const defaultMaxEvents = 1 << 18

// EnableEvents turns the event log on. maxEvents bounds the buffer (<= 0
// keeps the default); events beyond the bound are counted as dropped.
func (r *Recorder) EnableEvents(maxEvents int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if maxEvents > 0 {
		r.maxEvents = maxEvents
	} else if r.maxEvents == 0 {
		r.maxEvents = defaultMaxEvents
	}
	r.mu.Unlock()
	r.eventsOn.Store(true)
}

// EventsEnabled reports whether events are being recorded. Nil-safe; this
// is the one branch the engine pays per event site when the log is off.
func (r *Recorder) EventsEnabled() bool { return r != nil && r.eventsOn.Load() }

// RecordEvent appends an event if the log is on; past the buffer bound it
// only counts the drop. Safe from any worker.
func (r *Recorder) RecordEvent(e Event) {
	if !r.EventsEnabled() {
		return
	}
	r.mu.Lock()
	if len(r.events) < r.maxEvents {
		r.events = append(r.events, e)
	} else {
		r.droppedEvents++
	}
	r.mu.Unlock()
}

// Events returns a copy of the recorded events and the number dropped
// past the buffer bound.
func (r *Recorder) Events() ([]Event, int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...), r.droppedEvents
}

// WriteEvents writes the recorded events as JSONL: one event object per
// line, in recording order. Nil-safe: a nil recorder writes nothing.
func (r *Recorder) WriteEvents(w io.Writer) error {
	events, _ := r.Events()
	return WriteEvents(w, events)
}

// WriteEvents writes events as JSONL.
func WriteEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents parses a JSONL event log (the WriteEvents format). Blank
// lines are skipped; a malformed line is an error naming its number.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("events line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// WriteEventTrace replays an event log into the Chrome trace_event
// format: one instant event per log entry on the owning worker's track,
// with kind, depth and task count as args. Deterministic for a given
// event slice, like WriteTrace; load the output via chrome://tracing or
// Perfetto, alongside (or instead of) the span trace.
func WriteEventTrace(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range events {
		args := map[string]any{"depth": e.Depth}
		if e.Tasks > 0 {
			args["tasks"] = e.Tasks
		}
		b, err := json.Marshal(traceEvent{
			Name: e.Kind, Cat: "sched", Ph: "i", Pid: 0, Tid: e.Worker,
			Ts: us(e.Ns), Args: args,
		})
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s%s", sep, b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
