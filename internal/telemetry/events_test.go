package telemetry

import (
	"strings"
	"testing"
)

// TestEventLogRoundTrip: WriteEvents → ReadEvents must be the identity,
// and the JSONL lines must be self-describing (kind, worker, ns).
func TestEventLogRoundTrip(t *testing.T) {
	r := NewRecorder()
	if r.EventsEnabled() {
		t.Fatal("event log on by default")
	}
	r.RecordEvent(Event{Kind: EventSteal}) // off: must be dropped silently
	r.EnableEvents(0)
	want := []Event{
		{Ns: 10, Kind: EventSplitOpen, Worker: 0, Depth: 6, Tasks: 3},
		{Ns: 20, Kind: EventSteal, Worker: 1, Depth: 5},
		{Ns: 30, Kind: EventAbort, Worker: 1, Depth: 5},
		{Ns: 40, Kind: EventJoin, Worker: 0, Depth: 6, Tasks: 3},
	}
	for _, e := range want {
		r.RecordEvent(e)
	}
	var sb strings.Builder
	if err := r.WriteEvents(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "\n"); n != len(want) {
		t.Fatalf("JSONL has %d lines, want %d:\n%s", n, len(want), sb.String())
	}
	if !strings.Contains(sb.String(), `"kind":"split-open"`) {
		t.Fatalf("JSONL missing kind field:\n%s", sb.String())
	}
	got, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip lost events: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestEventLogBound: events past the cap are counted, not stored.
func TestEventLogBound(t *testing.T) {
	r := NewRecorder()
	r.EnableEvents(3)
	for i := 0; i < 10; i++ {
		r.RecordEvent(Event{Ns: int64(i), Kind: EventSteal})
	}
	events, dropped := r.Events()
	if len(events) != 3 || dropped != 7 {
		t.Fatalf("bound broken: %d stored, %d dropped", len(events), dropped)
	}
	r.Reset()
	if events, dropped := r.Events(); len(events) != 0 || dropped != 0 {
		t.Fatalf("Reset kept events: %d stored, %d dropped", len(events), dropped)
	}
	if !r.EventsEnabled() {
		t.Fatal("Reset cleared the events flag")
	}
}

// TestEventTraceReplay: the Chrome-trace replay of a log must emit one
// instant event per entry, on the right worker track, in order.
func TestEventTraceReplay(t *testing.T) {
	events := []Event{
		{Ns: 1000, Kind: EventSplitOpen, Worker: 2, Depth: 4, Tasks: 3},
		{Ns: 2000, Kind: EventSteal, Worker: 0, Depth: 3},
	}
	var sb strings.Builder
	if err := WriteEventTrace(&sb, events); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		`"name":"split-open"`, `"name":"steal"`, `"ph":"i"`,
		`"tid":2`, `"tid":0`, `"ts":1`, `"ts":2`, `"displayTimeUnit"`,
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("trace missing %s:\n%s", frag, out)
		}
	}
}

// TestNilRecorderEvents extends the nil-safety contract to the event log.
func TestNilRecorderEvents(t *testing.T) {
	var r *Recorder
	if r.EventsEnabled() {
		t.Fatal("nil recorder claims events on")
	}
	r.EnableEvents(5)
	r.RecordEvent(Event{Kind: EventJoin})
	if events, dropped := r.Events(); events != nil || dropped != 0 {
		t.Fatal("nil recorder stored events")
	}
	var sb strings.Builder
	if err := r.WriteEvents(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil recorder WriteEvents: err=%v out=%q", err, sb.String())
	}
}
