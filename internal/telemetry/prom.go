package telemetry

// Prometheus text exposition (version 0.0.4) of a telemetry snapshot:
// the counter totals as counter families, the per-worker task split as a
// labelled counter, and every histogram family with cumulative log₂
// buckets. The output is fully deterministic for a given snapshot —
// families in fixed order, workers ascending, `le` labels ascending —
// so the format is golden-testable and diff-friendly.
//
// Serving: PromHandler adapts a live Recorder to an http.Handler; the
// gtbench and gtplay -pprof muxes mount it at /metrics, which any
// Prometheus scraper (or plain curl) can poll during a run.

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"

	"gametree/internal/metrics"
)

// promCounter is one counter family derived from the snapshot totals.
type promCounter struct {
	name string
	help string
	val  int64
}

// WriteProm writes the snapshot in the Prometheus text exposition format.
func WriteProm(w io.Writer, s Snapshot) error {
	counters := []promCounter{
		{"gametree_nodes_total", "Positions visited by the search.", s.Total.Nodes},
		{"gametree_tasks_total", "Speculative sibling tasks executed.", s.Total.Tasks},
		{"gametree_splits_total", "Split points opened.", s.Total.Splits},
		{"gametree_nested_splits_total", "Split points opened beneath an enclosing split.", s.Total.NestedSplits},
		{"gametree_steal_attempts_total", "Steal attempts on a non-empty victim deque.", s.Total.StealAttempts},
		{"gametree_steals_total", "Steal attempts that won the task.", s.Total.Steals},
		{"gametree_aborts_total", "Tasks skipped or pre-empted by an abort.", s.Total.Aborts},
		{"gametree_nested_aborts_total", "Aborts propagated from an ancestor split's cutoff.", s.Total.NestedAborts},
		{"gametree_abort_drains_total", "Joins that drained after a beta cutoff.", s.Total.AbortDrains},
		{"gametree_tt_probes_total", "Transposition-table probes.", s.Total.TTProbes},
		{"gametree_tt_hits_total", "Transposition-table probe hits.", s.Total.TTHits},
		{"gametree_tt_stores_total", "Transposition-table stores.", s.Total.TTStores},
		{"gametree_tt_evictions_total", "Stores that displaced a live entry.", s.Total.TTEvictions},
		{"gametree_msgs_sent_total", "Message-passing messages sent.", s.Total.MsgsSent},
		{"gametree_msgs_recv_total", "Message-passing messages received.", s.Total.MsgsRecv},
		{"gametree_msgs_stale_total", "Message-passing messages dropped as stale.", s.Total.MsgsStale},
		{"gametree_retransmits_total", "Messages retransmitted after an ack timeout.", s.Total.Retransmits},
		{"gametree_heartbeats_total", "Heartbeats emitted by the reliability protocol.", s.Total.Heartbeats},
		{"gametree_reassigns_total", "Levels reassigned away from dead processors.", s.Total.Reassigns},
		{"gametree_shard_tasks_total", "Root tasks dispatched to shard workers.", s.Total.ShardTasks},
		{"gametree_shard_reissues_total", "Tasks reissued after a shard worker timed out or died.", s.Total.ShardReissues},
		{"gametree_remote_probes_total", "Transposition-table probes sent to the owning shard.", s.Total.RemoteProbes},
		{"gametree_remote_hits_total", "Remote TT probes answered with a usable entry.", s.Total.RemoteHits},
		{"gametree_remote_stores_total", "Transposition-table stores forwarded to the owning shard.", s.Total.RemoteStores},
		{"gametree_remote_skips_total", "Remote TT probes skipped because the in-flight window was full.", s.Total.RemoteSkips},
		{"gametree_pn_nodes_total", "Nodes traversed during proof-number most-proving descents.", s.Total.PNNodes},
		{"gametree_pn_expands_total", "Leaves expanded by the proof-number solver.", s.Total.PNExpands},
		{"gametree_pn_updates_total", "Ancestor proof/disproof-number recomputations.", s.Total.PNUpdates},
	}
	for _, c := range counters {
		if err := promHeader(w, c.name, c.help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.name, c.val); err != nil {
			return err
		}
	}

	if err := promHeader(w, "gametree_workers", "Worker shards registered with the recorder.", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "gametree_workers %d\n", len(s.PerWorker)); err != nil {
		return err
	}
	if err := promHeader(w, "gametree_deque_high_water", "Deepest deque observed on any worker.", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "gametree_deque_high_water %d\n", s.Total.DequeMax); err != nil {
		return err
	}

	if err := promHeader(w, "gametree_worker_tasks_total", "Speculative tasks executed, per worker.", "counter"); err != nil {
		return err
	}
	for i, c := range s.PerWorker {
		if _, err := fmt.Fprintf(w, "gametree_worker_tasks_total{worker=\"%d\"} %d\n", i, c.Tasks); err != nil {
			return err
		}
	}

	for h := 0; h < NumHists; h++ {
		name := "gametree_" + HistName(h)
		if err := promHeader(w, name, HistHelp(h), "histogram"); err != nil {
			return err
		}
		if err := promHistogram(w, name, s.Hist[h]); err != nil {
			return err
		}
	}
	return nil
}

// promHeader writes the HELP and TYPE lines of one family.
func promHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// promHistogram writes the cumulative bucket series of one family:
// ascending `le` bounds up to the highest populated bucket (empty
// trailing buckets carry no information), then the mandatory +Inf bucket,
// _sum and _count.
func promHistogram(w io.Writer, name string, s metrics.HistSnapshot) error {
	hi := -1
	for i, c := range s.Buckets {
		if c > 0 {
			hi = i
		}
	}
	var cum int64
	for i := 0; i <= hi; i++ {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, metrics.BucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Count); err != nil {
		return err
	}
	return nil
}

// PromCounter writes one counter family: HELP/TYPE header plus a single
// unlabelled sample. Exported for subsystems (the serve layer) that
// append their own families to a Recorder exposition via AddPromSection.
func PromCounter(w io.Writer, name, help string, v int64) error {
	if err := promHeader(w, name, help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", name, v)
	return err
}

// PromGauge writes one gauge family.
func PromGauge(w io.Writer, name, help string, v int64) error {
	if err := promHeader(w, name, help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", name, v)
	return err
}

// PromHistogram writes one histogram family with the recorder's
// cumulative log₂ bucket scheme.
func PromHistogram(w io.Writer, name, help string, s metrics.HistSnapshot) error {
	if err := promHeader(w, name, help, "histogram"); err != nil {
		return err
	}
	return promHistogram(w, name, s)
}

// AddPromSection registers an extra exposition section written after the
// recorder's own families by (*Recorder).WriteProm — and therefore by
// PromHandler — so a subsystem built on the recorder (the serve layer's
// admission counters and latency histograms) shares the one /metrics
// endpoint. Sections are written in registration order. Nil-safe: a nil
// recorder drops the registration.
func (r *Recorder) AddPromSection(f func(io.Writer) error) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.promSections = append(r.promSections, f)
	r.mu.Unlock()
}

// WriteProm writes this recorder's current snapshot in the Prometheus
// text exposition format, followed by any registered extra sections.
// Nil-safe: a nil recorder writes the empty snapshot (all families
// present, all zero).
func (r *Recorder) WriteProm(w io.Writer) error {
	if err := WriteProm(w, r.Snapshot()); err != nil {
		return err
	}
	if r == nil {
		return nil
	}
	r.mu.Lock()
	sections := append([]func(io.Writer) error(nil), r.promSections...)
	r.mu.Unlock()
	for _, f := range sections {
		if err := f(w); err != nil {
			return err
		}
	}
	return nil
}

// BuildInfoSection returns an AddPromSection-compatible writer
// publishing the process's build identity as the conventional
// constant-1 info gauge: gametree_build_info{go_version=...,
// revision=...} 1. The revision is the VCS commit stamped by the Go
// toolchain at build time ("unknown" for test binaries and go-run
// builds, "+dirty" appended when the working tree was modified).
func BuildInfoSection() func(io.Writer) error {
	goVer := runtime.Version()
	rev := "unknown"
	dirty := ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
	}
	line := fmt.Sprintf("gametree_build_info{go_version=%q,revision=%q} 1\n", goVer, rev+dirty)
	return func(w io.Writer) error {
		if err := promHeader(w, "gametree_build_info", "Build identity; value is always 1.", "gauge"); err != nil {
			return err
		}
		_, err := io.WriteString(w, line)
		return err
	}
}

// PromHandler serves a live recorder as a Prometheus /metrics endpoint.
// Every request takes a fresh snapshot, so a scrape during a running
// search sees a momentary — but race-clean — view.
func PromHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
