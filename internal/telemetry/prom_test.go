package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// promGolden is the exact exposition of the recorder built by
// buildPromFixture. The golden pin is the format contract: metric names,
// HELP/TYPE lines, label ordering (workers ascending, `le` ascending,
// +Inf last) and the cumulative bucket series must never drift, because
// dashboards and scrape configs key off them.
const promGolden = `# HELP gametree_nodes_total Positions visited by the search.
# TYPE gametree_nodes_total counter
gametree_nodes_total 1000
# HELP gametree_tasks_total Speculative sibling tasks executed.
# TYPE gametree_tasks_total counter
gametree_tasks_total 12
# HELP gametree_splits_total Split points opened.
# TYPE gametree_splits_total counter
gametree_splits_total 3
# HELP gametree_nested_splits_total Split points opened beneath an enclosing split.
# TYPE gametree_nested_splits_total counter
gametree_nested_splits_total 1
# HELP gametree_steal_attempts_total Steal attempts on a non-empty victim deque.
# TYPE gametree_steal_attempts_total counter
gametree_steal_attempts_total 8
# HELP gametree_steals_total Steal attempts that won the task.
# TYPE gametree_steals_total counter
gametree_steals_total 6
# HELP gametree_aborts_total Tasks skipped or pre-empted by an abort.
# TYPE gametree_aborts_total counter
gametree_aborts_total 2
# HELP gametree_nested_aborts_total Aborts propagated from an ancestor split's cutoff.
# TYPE gametree_nested_aborts_total counter
gametree_nested_aborts_total 1
# HELP gametree_abort_drains_total Joins that drained after a beta cutoff.
# TYPE gametree_abort_drains_total counter
gametree_abort_drains_total 2
# HELP gametree_tt_probes_total Transposition-table probes.
# TYPE gametree_tt_probes_total counter
gametree_tt_probes_total 40
# HELP gametree_tt_hits_total Transposition-table probe hits.
# TYPE gametree_tt_hits_total counter
gametree_tt_hits_total 10
# HELP gametree_tt_stores_total Transposition-table stores.
# TYPE gametree_tt_stores_total counter
gametree_tt_stores_total 30
# HELP gametree_tt_evictions_total Stores that displaced a live entry.
# TYPE gametree_tt_evictions_total counter
gametree_tt_evictions_total 1
# HELP gametree_msgs_sent_total Message-passing messages sent.
# TYPE gametree_msgs_sent_total counter
gametree_msgs_sent_total 0
# HELP gametree_msgs_recv_total Message-passing messages received.
# TYPE gametree_msgs_recv_total counter
gametree_msgs_recv_total 0
# HELP gametree_msgs_stale_total Message-passing messages dropped as stale.
# TYPE gametree_msgs_stale_total counter
gametree_msgs_stale_total 0
# HELP gametree_retransmits_total Messages retransmitted after an ack timeout.
# TYPE gametree_retransmits_total counter
gametree_retransmits_total 0
# HELP gametree_heartbeats_total Heartbeats emitted by the reliability protocol.
# TYPE gametree_heartbeats_total counter
gametree_heartbeats_total 0
# HELP gametree_reassigns_total Levels reassigned away from dead processors.
# TYPE gametree_reassigns_total counter
gametree_reassigns_total 0
# HELP gametree_shard_tasks_total Root tasks dispatched to shard workers.
# TYPE gametree_shard_tasks_total counter
gametree_shard_tasks_total 9
# HELP gametree_shard_reissues_total Tasks reissued after a shard worker timed out or died.
# TYPE gametree_shard_reissues_total counter
gametree_shard_reissues_total 1
# HELP gametree_remote_probes_total Transposition-table probes sent to the owning shard.
# TYPE gametree_remote_probes_total counter
gametree_remote_probes_total 20
# HELP gametree_remote_hits_total Remote TT probes answered with a usable entry.
# TYPE gametree_remote_hits_total counter
gametree_remote_hits_total 5
# HELP gametree_remote_stores_total Transposition-table stores forwarded to the owning shard.
# TYPE gametree_remote_stores_total counter
gametree_remote_stores_total 15
# HELP gametree_remote_skips_total Remote TT probes skipped because the in-flight window was full.
# TYPE gametree_remote_skips_total counter
gametree_remote_skips_total 2
# HELP gametree_pn_nodes_total Nodes traversed during proof-number most-proving descents.
# TYPE gametree_pn_nodes_total counter
gametree_pn_nodes_total 50
# HELP gametree_pn_expands_total Leaves expanded by the proof-number solver.
# TYPE gametree_pn_expands_total counter
gametree_pn_expands_total 14
# HELP gametree_pn_updates_total Ancestor proof/disproof-number recomputations.
# TYPE gametree_pn_updates_total counter
gametree_pn_updates_total 28
# HELP gametree_workers Worker shards registered with the recorder.
# TYPE gametree_workers gauge
gametree_workers 2
# HELP gametree_deque_high_water Deepest deque observed on any worker.
# TYPE gametree_deque_high_water gauge
gametree_deque_high_water 3
# HELP gametree_worker_tasks_total Speculative tasks executed, per worker.
# TYPE gametree_worker_tasks_total counter
gametree_worker_tasks_total{worker="0"} 7
gametree_worker_tasks_total{worker="1"} 5
# HELP gametree_abort_drain_ns Cutoff-to-drain latency of beta-aborted joins, nanoseconds.
# TYPE gametree_abort_drain_ns histogram
gametree_abort_drain_ns_bucket{le="1"} 0
gametree_abort_drain_ns_bucket{le="2"} 0
gametree_abort_drain_ns_bucket{le="4"} 0
gametree_abort_drain_ns_bucket{le="8"} 0
gametree_abort_drain_ns_bucket{le="16"} 0
gametree_abort_drain_ns_bucket{le="32"} 0
gametree_abort_drain_ns_bucket{le="64"} 0
gametree_abort_drain_ns_bucket{le="128"} 1
gametree_abort_drain_ns_bucket{le="256"} 1
gametree_abort_drain_ns_bucket{le="512"} 1
gametree_abort_drain_ns_bucket{le="1024"} 1
gametree_abort_drain_ns_bucket{le="2048"} 2
gametree_abort_drain_ns_bucket{le="+Inf"} 2
gametree_abort_drain_ns_sum 2100
gametree_abort_drain_ns_count 2
# HELP gametree_task_run_ns Wall time of one speculative sibling task, nanoseconds.
# TYPE gametree_task_run_ns histogram
gametree_task_run_ns_bucket{le="+Inf"} 0
gametree_task_run_ns_sum 0
gametree_task_run_ns_count 0
# HELP gametree_steal_retries CAS retries per steal attempt on a non-empty victim deque.
# TYPE gametree_steal_retries histogram
gametree_steal_retries_bucket{le="1"} 8
gametree_steal_retries_bucket{le="+Inf"} 8
gametree_steal_retries_sum 4
gametree_steal_retries_count 8
# HELP gametree_deque_depth Owner deque depth observed when a split pushes its tasks.
# TYPE gametree_deque_depth histogram
gametree_deque_depth_bucket{le="1"} 1
gametree_deque_depth_bucket{le="2"} 2
gametree_deque_depth_bucket{le="4"} 3
gametree_deque_depth_bucket{le="+Inf"} 3
gametree_deque_depth_sum 6
gametree_deque_depth_count 3
# HELP gametree_tt_probe_depth Remaining search depth at each transposition-table probe.
# TYPE gametree_tt_probe_depth histogram
gametree_tt_probe_depth_bucket{le="1"} 0
gametree_tt_probe_depth_bucket{le="2"} 0
gametree_tt_probe_depth_bucket{le="4"} 40
gametree_tt_probe_depth_bucket{le="+Inf"} 40
gametree_tt_probe_depth_sum 160
gametree_tt_probe_depth_count 40
# HELP gametree_msg_residence_ns Message-passing mailbox residence from send to drain, nanoseconds.
# TYPE gametree_msg_residence_ns histogram
gametree_msg_residence_ns_bucket{le="+Inf"} 0
gametree_msg_residence_ns_sum 0
gametree_msg_residence_ns_count 0
# HELP gametree_retransmit_delay_ns Age of an unacknowledged message at each retransmission, nanoseconds.
# TYPE gametree_retransmit_delay_ns histogram
gametree_retransmit_delay_ns_bucket{le="+Inf"} 0
gametree_retransmit_delay_ns_sum 0
gametree_retransmit_delay_ns_count 0
# HELP gametree_recovery_ns Heartbeat silence observed when a processor was declared dead, nanoseconds.
# TYPE gametree_recovery_ns histogram
gametree_recovery_ns_bucket{le="+Inf"} 0
gametree_recovery_ns_sum 0
gametree_recovery_ns_count 0
# HELP gametree_split_depth Remaining search depth at each opened split point.
# TYPE gametree_split_depth histogram
gametree_split_depth_bucket{le="1"} 0
gametree_split_depth_bucket{le="2"} 0
gametree_split_depth_bucket{le="4"} 1
gametree_split_depth_bucket{le="8"} 3
gametree_split_depth_bucket{le="+Inf"} 3
gametree_split_depth_sum 17
gametree_split_depth_count 3
# HELP gametree_shard_rpc_ns Shard RPC round-trip latency (task dispatch to result, TT probe to reply), nanoseconds.
# TYPE gametree_shard_rpc_ns histogram
gametree_shard_rpc_ns_bucket{le="1"} 0
gametree_shard_rpc_ns_bucket{le="2"} 0
gametree_shard_rpc_ns_bucket{le="4"} 0
gametree_shard_rpc_ns_bucket{le="8"} 0
gametree_shard_rpc_ns_bucket{le="16"} 0
gametree_shard_rpc_ns_bucket{le="32"} 0
gametree_shard_rpc_ns_bucket{le="64"} 0
gametree_shard_rpc_ns_bucket{le="128"} 0
gametree_shard_rpc_ns_bucket{le="256"} 0
gametree_shard_rpc_ns_bucket{le="512"} 0
gametree_shard_rpc_ns_bucket{le="1024"} 0
gametree_shard_rpc_ns_bucket{le="2048"} 0
gametree_shard_rpc_ns_bucket{le="4096"} 0
gametree_shard_rpc_ns_bucket{le="8192"} 0
gametree_shard_rpc_ns_bucket{le="16384"} 0
gametree_shard_rpc_ns_bucket{le="32768"} 1
gametree_shard_rpc_ns_bucket{le="+Inf"} 1
gametree_shard_rpc_ns_sum 30000
gametree_shard_rpc_ns_count 1
# HELP gametree_pns_mpn_depth Tree depth of each most-proving node a proof-number worker descended to.
# TYPE gametree_pns_mpn_depth histogram
gametree_pns_mpn_depth_bucket{le="1"} 0
gametree_pns_mpn_depth_bucket{le="2"} 0
gametree_pns_mpn_depth_bucket{le="4"} 1
gametree_pns_mpn_depth_bucket{le="8"} 2
gametree_pns_mpn_depth_bucket{le="+Inf"} 2
gametree_pns_mpn_depth_sum 9
gametree_pns_mpn_depth_count 2
`

// buildPromFixture populates a recorder with a small deterministic state
// covering every family kind: plain counters, gauges, a labelled
// per-worker counter, and histograms that are empty, single-bucket and
// multi-bucket.
func buildPromFixture() *Recorder {
	r := NewRecorder()
	a, b := r.Shard(0), r.Shard(1)
	a.Nodes.Add(600)
	b.Nodes.Add(400)
	a.Tasks.Add(7)
	b.Tasks.Add(5)
	a.Splits.Add(3)
	a.NestedSplits.Add(1)
	a.StealAttempts.Add(8)
	a.Steals.Add(6)
	a.Aborts.Add(2)
	a.NestedAborts.Add(1)
	a.AbortDrains.Add(2)
	a.TTProbes.Add(40)
	a.TTHits.Add(10)
	a.TTStores.Add(30)
	a.TTEvictions.Add(1)
	a.Hist[HistAbortDrainNs].Observe(100)
	b.Hist[HistAbortDrainNs].Observe(2000)
	for i := 0; i < 8; i++ {
		a.Hist[HistStealRetries].Observe(int64(i % 2)) // retries 0,1,...
	}
	a.ObserveDeque(1)
	a.ObserveDeque(2)
	b.ObserveDeque(3)
	for i := 0; i < 40; i++ {
		a.Hist[HistTTProbeDepth].Observe(4)
	}
	a.Hist[HistSplitDepth].Observe(8)
	a.Hist[HistSplitDepth].Observe(5)
	b.Hist[HistSplitDepth].Observe(4)
	a.ShardTasks.Add(9)
	a.ShardReissues.Add(1)
	a.RemoteProbes.Add(20)
	a.RemoteHits.Add(5)
	a.RemoteStores.Add(15)
	a.RemoteSkips.Add(2)
	a.Hist[HistShardRPCNs].Observe(30000)
	a.PNNodes.Add(50)
	a.PNExpands.Add(14)
	b.PNUpdates.Add(28)
	a.Hist[HistPNMPNDepth].Observe(3)
	b.Hist[HistPNMPNDepth].Observe(6)
	return r
}

// TestWritePromGolden pins the exposition byte-for-byte.
func TestWritePromGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildPromFixture().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != promGolden {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, promGolden)
	}
}

// TestPromParses runs a minimal exposition-format parser over the output:
// every non-comment line is `name{labels} value` or `name value`, every
// family has HELP and TYPE before its samples, histogram buckets are
// cumulative with +Inf equal to _count. This is what "parseable
// Prometheus text" means without importing a client library.
func TestPromParses(t *testing.T) {
	var sb strings.Builder
	if err := buildPromFixture().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	helped := map[string]bool{}
	typed := map[string]string{}
	var histFamilies int
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lastBucket int64
	var lastFamily string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			typed[f[2]] = f[3]
			if f[3] == "histogram" {
				histFamilies++
			}
			continue
		}
		name, value, err := parsePromSample(line)
		if err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if typed[strings.TrimSuffix(name, suffix)] == "histogram" {
				family = strings.TrimSuffix(name, suffix)
			}
		}
		if !helped[family] || typed[family] == "" {
			t.Fatalf("sample %q has no preceding HELP/TYPE for family %q", line, family)
		}
		if strings.HasSuffix(name, "_bucket") {
			if family != lastFamily {
				lastFamily, lastBucket = family, 0
			}
			if value < lastBucket {
				t.Fatalf("bucket series of %s not cumulative: %d after %d", family, value, lastBucket)
			}
			lastBucket = value
		}
	}
	if histFamilies < 8 {
		t.Fatalf("exposition has %d histogram families, want at least 8", histFamilies)
	}
}

// parsePromSample splits one sample line into metric name and integer
// value (all families in this exposition are integral).
func parsePromSample(line string) (string, int64, error) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", 0, fmt.Errorf("no value separator")
	}
	v, err := strconv.ParseInt(line[sp+1:], 10, 64)
	if err != nil {
		return "", 0, err
	}
	name := line[:sp]
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			return "", 0, fmt.Errorf("unbalanced label braces")
		}
		name = name[:i]
	}
	return name, v, nil
}

// TestPromHandler serves the fixture over HTTP and checks the content
// type and a spot sample — the /metrics endpoint contract.
func TestPromHandler(t *testing.T) {
	srv := httptest.NewServer(PromHandler(buildPromFixture()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "gametree_nodes_total 1000") {
		t.Fatalf("handler output missing counters:\n%s", body)
	}

	// A nil recorder must still serve a complete, all-zero exposition.
	var nilRec *Recorder
	var nb strings.Builder
	if err := nilRec.WriteProm(&nb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nb.String(), "gametree_nodes_total 0") {
		t.Fatal("nil recorder exposition incomplete")
	}
}
