// Package telemetry is the low-overhead metrics and span-tracing layer of
// the search subsystems. It exists because end-state numbers (nodes/sec,
// total messages) cannot falsify claims about *how* a parallel search ran:
// steal rates, per-worker load skew, abort-to-drain latency and
// transposition-table behaviour are invisible in them.
//
// The design keeps the fast path to one cache-local atomic increment:
//
//   - Counters are sharded per worker (or per message-passing processor)
//     into a Shard, a cache-line-padded block of atomic.Int64 fields.
//     Every Shard has exactly one writer — the worker that owns it — so
//     increments never contend; atomics are used (rather than plain
//     int64s) only so that Snapshot may run concurrently with a live
//     search and stay clean under the race detector.
//   - Snapshot sums the shards. It is intended for quiesce points (after
//     a pool joins) but is safe at any time; a mid-run snapshot is simply
//     a momentary view.
//   - Each Shard also carries the fixed histogram families of
//     internal/metrics (log₂ streaming histograms: abort-drain latency,
//     task run time, steal retries, deque depth, TT probe depth, msgpass
//     queue residence), merged across shards at Snapshot and published
//     as p50/p95/p99/max in Report and as Prometheus text by WriteProm
//     (served at /metrics on the -pprof mux of gtbench and gtplay).
//   - A Recorder bundles the shards with an optional span recorder for
//     split-point lifetimes (open → join → drain), which WriteTrace can
//     emit as Chrome trace_event JSON (chrome://tracing, Perfetto), and
//     an optional bounded structured event log (events.go) written as
//     JSONL and replayable into the same Chrome-trace path by gttrace.
//
// A nil *Recorder is a valid "telemetry off" value: every method is
// nil-receiver-safe, and the engine guards its increments with a single
// nil check, so the disabled cost is one predictable branch per event.
package telemetry

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/metrics"
)

// Histogram indices into Shard.Hist. Each family keeps the distribution
// behind one of the cumulative counters (or a quantity no counter can
// carry at all), per-shard and single-writer like the counters; Snapshot
// merges them. The Prometheus exposition (WriteProm) publishes every
// family; Report extracts the headline quantiles.
const (
	HistAbortDrainNs      = iota // cutoff→drain latency of aborted joins, ns
	HistTaskRunNs                // wall time of one speculative task, ns
	HistStealRetries             // CAS retries per steal attempt that saw work
	HistDequeDepth               // deque depth observed at each split's push
	HistTTProbeDepth             // remaining search depth at each TT probe
	HistMsgResidenceNs           // msgpass mailbox residence (send→drain), ns
	HistRetransmitDelayNs        // age of an unacked message at each retransmit, ns
	HistRecoveryNs               // heartbeat silence until a crash was declared, ns
	HistSplitDepth               // remaining search depth at each opened split point
	HistShardRPCNs               // shard RPC round trip (task dispatch→result, probe→reply), ns
	HistPNMPNDepth               // tree depth of each most-proving node a solver worker descended to
	NumHists
)

// HistName returns the stable short name of a histogram family (also its
// Prometheus metric name minus the "gametree_" prefix).
func HistName(i int) string {
	switch i {
	case HistAbortDrainNs:
		return "abort_drain_ns"
	case HistTaskRunNs:
		return "task_run_ns"
	case HistStealRetries:
		return "steal_retries"
	case HistDequeDepth:
		return "deque_depth"
	case HistTTProbeDepth:
		return "tt_probe_depth"
	case HistMsgResidenceNs:
		return "msg_residence_ns"
	case HistRetransmitDelayNs:
		return "retransmit_delay_ns"
	case HistRecoveryNs:
		return "recovery_ns"
	case HistSplitDepth:
		return "split_depth"
	case HistShardRPCNs:
		return "shard_rpc_ns"
	case HistPNMPNDepth:
		return "pns_mpn_depth"
	}
	return ""
}

// HistHelp returns the Prometheus HELP text of a histogram family.
func HistHelp(i int) string {
	switch i {
	case HistAbortDrainNs:
		return "Cutoff-to-drain latency of beta-aborted joins, nanoseconds."
	case HistTaskRunNs:
		return "Wall time of one speculative sibling task, nanoseconds."
	case HistStealRetries:
		return "CAS retries per steal attempt on a non-empty victim deque."
	case HistDequeDepth:
		return "Owner deque depth observed when a split pushes its tasks."
	case HistTTProbeDepth:
		return "Remaining search depth at each transposition-table probe."
	case HistMsgResidenceNs:
		return "Message-passing mailbox residence from send to drain, nanoseconds."
	case HistRetransmitDelayNs:
		return "Age of an unacknowledged message at each retransmission, nanoseconds."
	case HistRecoveryNs:
		return "Heartbeat silence observed when a processor was declared dead, nanoseconds."
	case HistSplitDepth:
		return "Remaining search depth at each opened split point."
	case HistShardRPCNs:
		return "Shard RPC round-trip latency (task dispatch to result, TT probe to reply), nanoseconds."
	case HistPNMPNDepth:
		return "Tree depth of each most-proving node a proof-number worker descended to."
	}
	return ""
}

// Shard is one worker's counter block. All fields are single-writer
// (owner-only); readers use Snapshot. The block is padded to whole cache
// lines so neighbouring shards never false-share.
//
// Counter semantics (see also README "Telemetry"):
//
//	Tasks          speculative sibling tasks actually executed
//	StealAttempts  steal attempts on a non-empty victim deque
//	Steals         steal attempts that won the task
//	Splits         split points opened by this worker
//	NestedSplits   splits opened beneath an enclosing split (recursive
//	               YBWC splits inside a stolen subtree)
//	Aborts         tasks that observed an abort (skipped before running,
//	               or whose in-flight search was pre-empted)
//	NestedAborts   aborts propagated from an *ancestor* split's beta
//	               cutoff rather than raised locally — the chained abort
//	               rule pre-empting a whole speculative subtree
//	AbortDrains    joins that drained after a beta cutoff was raised
//	AbortDrainNs   cumulative cutoff-to-drain latency over those joins
//	TTProbes/TTHits/TTStores/TTEvictions
//	               transposition-table traffic issued by this worker;
//	               an eviction is a store that displaced a live entry of
//	               a different position
//	DequeMax       high-water mark of this worker's deque depth
//	Nodes          positions visited (folded in when the pool quiesces)
//	MsgsSent/MsgsRecv/MsgsStale
//	               message-passing processors: messages sent, received,
//	               and invocations/values dropped as stale
//	Retransmits/Heartbeats/Reassigns
//	               reliability protocol (faultnet runs): messages
//	               retransmitted after ack timeout, heartbeats emitted,
//	               and levels reassigned away from dead processors
//	ShardTasks/ShardReissues
//	               distributed serving tier: root tasks dispatched to
//	               shard workers, and tasks reissued to a successor after
//	               a worker timed out or died
//	RemoteProbes/RemoteHits/RemoteStores/RemoteSkips
//	               two-level transposition table: probes sent to the
//	               owning shard, replies that carried a usable entry,
//	               stores forwarded to the owner, and probes skipped
//	               because the bounded in-flight window was full
//	PNNodes/PNExpands/PNUpdates
//	               proof-number solver: nodes traversed during
//	               most-proving-node descents, leaves expanded (children
//	               generated and initialized), and ancestor
//	               proof/disproof-number recomputations on the way back up
type Shard struct {
	Tasks         atomic.Int64
	StealAttempts atomic.Int64
	Steals        atomic.Int64
	Splits        atomic.Int64
	NestedSplits  atomic.Int64
	Aborts        atomic.Int64
	NestedAborts  atomic.Int64
	AbortDrains   atomic.Int64
	AbortDrainNs  atomic.Int64
	TTProbes      atomic.Int64
	TTHits        atomic.Int64
	TTStores      atomic.Int64
	TTEvictions   atomic.Int64
	DequeMax      atomic.Int64
	Nodes         atomic.Int64
	MsgsSent      atomic.Int64
	MsgsRecv      atomic.Int64
	MsgsStale     atomic.Int64
	Retransmits   atomic.Int64
	Heartbeats    atomic.Int64
	Reassigns     atomic.Int64
	ShardTasks    atomic.Int64
	ShardReissues atomic.Int64
	RemoteProbes  atomic.Int64
	RemoteHits    atomic.Int64
	RemoteStores  atomic.Int64
	RemoteSkips   atomic.Int64
	PNNodes       atomic.Int64
	PNExpands     atomic.Int64
	PNUpdates     atomic.Int64

	// Hist keeps the distributions behind the counters above (see the
	// Hist* index constants). Same discipline: single writer, atomic only
	// so concurrent snapshots stay race-clean.
	Hist [NumHists]metrics.Histogram
}

// ObserveDeque raises the deque high-water mark and samples the depth
// distribution. Owner-only, like every Shard write: the load-then-store
// is safe because no one else writes.
func (s *Shard) ObserveDeque(depth int64) {
	if depth > s.DequeMax.Load() {
		s.DequeMax.Store(depth)
	}
	s.Hist[HistDequeDepth].Observe(depth)
}

// Counts is a plain (non-atomic) image of one Shard, and the element of a
// Snapshot.
type Counts struct {
	Tasks         int64
	StealAttempts int64
	Steals        int64
	Splits        int64
	NestedSplits  int64
	Aborts        int64
	NestedAborts  int64
	AbortDrains   int64
	AbortDrainNs  int64
	TTProbes      int64
	TTHits        int64
	TTStores      int64
	TTEvictions   int64
	DequeMax      int64
	Nodes         int64
	MsgsSent      int64
	MsgsRecv      int64
	MsgsStale     int64
	Retransmits   int64
	Heartbeats    int64
	Reassigns     int64
	ShardTasks    int64
	ShardReissues int64
	RemoteProbes  int64
	RemoteHits    int64
	RemoteStores  int64
	RemoteSkips   int64
	PNNodes       int64
	PNExpands     int64
	PNUpdates     int64
}

// load copies a shard's counters.
func (s *Shard) load() Counts {
	return Counts{
		Tasks:         s.Tasks.Load(),
		StealAttempts: s.StealAttempts.Load(),
		Steals:        s.Steals.Load(),
		Splits:        s.Splits.Load(),
		NestedSplits:  s.NestedSplits.Load(),
		Aborts:        s.Aborts.Load(),
		NestedAborts:  s.NestedAborts.Load(),
		AbortDrains:   s.AbortDrains.Load(),
		AbortDrainNs:  s.AbortDrainNs.Load(),
		TTProbes:      s.TTProbes.Load(),
		TTHits:        s.TTHits.Load(),
		TTStores:      s.TTStores.Load(),
		TTEvictions:   s.TTEvictions.Load(),
		DequeMax:      s.DequeMax.Load(),
		Nodes:         s.Nodes.Load(),
		MsgsSent:      s.MsgsSent.Load(),
		MsgsRecv:      s.MsgsRecv.Load(),
		MsgsStale:     s.MsgsStale.Load(),
		Retransmits:   s.Retransmits.Load(),
		Heartbeats:    s.Heartbeats.Load(),
		Reassigns:     s.Reassigns.Load(),
		ShardTasks:    s.ShardTasks.Load(),
		ShardReissues: s.ShardReissues.Load(),
		RemoteProbes:  s.RemoteProbes.Load(),
		RemoteHits:    s.RemoteHits.Load(),
		RemoteStores:  s.RemoteStores.Load(),
		RemoteSkips:   s.RemoteSkips.Load(),
		PNNodes:       s.PNNodes.Load(),
		PNExpands:     s.PNExpands.Load(),
		PNUpdates:     s.PNUpdates.Load(),
	}
}

// add folds o into c (DequeMax takes the max, everything else sums).
func (c *Counts) add(o Counts) {
	c.Tasks += o.Tasks
	c.StealAttempts += o.StealAttempts
	c.Steals += o.Steals
	c.Splits += o.Splits
	c.NestedSplits += o.NestedSplits
	c.Aborts += o.Aborts
	c.NestedAborts += o.NestedAborts
	c.AbortDrains += o.AbortDrains
	c.AbortDrainNs += o.AbortDrainNs
	c.TTProbes += o.TTProbes
	c.TTHits += o.TTHits
	c.TTStores += o.TTStores
	c.TTEvictions += o.TTEvictions
	if o.DequeMax > c.DequeMax {
		c.DequeMax = o.DequeMax
	}
	c.Nodes += o.Nodes
	c.MsgsSent += o.MsgsSent
	c.MsgsRecv += o.MsgsRecv
	c.MsgsStale += o.MsgsStale
	c.Retransmits += o.Retransmits
	c.Heartbeats += o.Heartbeats
	c.Reassigns += o.Reassigns
	c.ShardTasks += o.ShardTasks
	c.ShardReissues += o.ShardReissues
	c.RemoteProbes += o.RemoteProbes
	c.RemoteHits += o.RemoteHits
	c.RemoteStores += o.RemoteStores
	c.RemoteSkips += o.RemoteSkips
	c.PNNodes += o.PNNodes
	c.PNExpands += o.PNExpands
	c.PNUpdates += o.PNUpdates
}

// Snapshot is a point-in-time view of a Recorder: the per-shard counters,
// their sum, and the shard-merged histogram families.
type Snapshot struct {
	PerWorker []Counts
	Total     Counts
	Hist      [NumHists]metrics.HistSnapshot
}

// defaultMaxSpans bounds the span buffer so tracing a long search cannot
// grow memory without limit; spans past the cap are counted, not stored.
const defaultMaxSpans = 1 << 16

// Recorder bundles the counter shards of one instrumented subsystem with
// the optional span recorder. The zero value is not usable; construct
// with NewRecorder. A nil *Recorder means "telemetry off" and every
// method on it is a no-op.
type Recorder struct {
	epoch    time.Time
	tracing  atomic.Bool
	eventsOn atomic.Bool

	mu            sync.Mutex
	shards        []*Shard
	spans         []Span
	maxSpans      int
	dropped       int64
	events        []Event
	maxEvents     int
	droppedEvents int64
	promSections  []func(io.Writer) error // extra /metrics families (AddPromSection)
}

// NewRecorder returns an empty recorder with tracing and the event log
// off.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now(), maxSpans: defaultMaxSpans, maxEvents: defaultMaxEvents}
}

// EnableTrace turns the span recorder on. maxSpans bounds the buffer
// (<= 0 keeps the default); spans beyond the bound increment Dropped.
func (r *Recorder) EnableTrace(maxSpans int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if maxSpans > 0 {
		r.maxSpans = maxSpans
	}
	r.mu.Unlock()
	r.tracing.Store(true)
}

// TraceEnabled reports whether spans are being recorded. Nil-safe.
func (r *Recorder) TraceEnabled() bool { return r != nil && r.tracing.Load() }

// Now returns nanoseconds since the recorder's epoch (monotonic). It is
// the timebase of spans and latency counters. Nil-safe: 0 when off.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Shard returns the i'th counter shard, growing the shard set as needed.
// Growth happens only at quiesce points (pool construction), never on the
// search fast path. Nil-safe: returns nil when the recorder is off.
func (r *Recorder) Shard(i int) *Shard {
	if r == nil || i < 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.shards) <= i {
		r.shards = append(r.shards, new(Shard))
	}
	return r.shards[i]
}

// Snapshot sums the shards. Safe at any time (shards are single-writer,
// reads are atomic); exact once the instrumented search has quiesced.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	shards := r.shards
	r.mu.Unlock()
	snap := Snapshot{PerWorker: make([]Counts, len(shards))}
	for i, s := range shards {
		snap.PerWorker[i] = s.load()
		snap.Total.add(snap.PerWorker[i])
		for h := 0; h < NumHists; h++ {
			snap.Hist[h].Merge(s.Hist[h].Snapshot())
		}
	}
	return snap
}

// Reset zeroes every counter and histogram and drops recorded spans and
// events; the epoch and the tracing/event flags are kept. Call only at
// quiesce points.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.shards {
		*s = Shard{}
	}
	r.spans = nil
	r.dropped = 0
	r.events = nil
	r.droppedEvents = 0
}

// Report condenses a snapshot into the derived metrics the benchmarks and
// CI publish: steal efficiency, abort-drain latency, TT hit rate, and
// per-worker load skew.
type Report struct {
	Workers          int     `json:"workers"`
	Nodes            int64   `json:"nodes"`
	Tasks            int64   `json:"tasks"`
	Splits           int64   `json:"splits"`
	NestedSplits     int64   `json:"nested_splits,omitempty"`
	StealAttempts    int64   `json:"steal_attempts"`
	Steals           int64   `json:"steals"`
	StealEfficiency  float64 `json:"steal_efficiency"` // Steals/StealAttempts; 0 when no attempts
	Aborts           int64   `json:"aborts"`
	NestedAborts     int64   `json:"nested_aborts,omitempty"`
	AbortDrains      int64   `json:"abort_drains"`
	AbortDrainMeanUs float64 `json:"abort_drain_mean_us"` // mean cutoff→drain latency, µs
	// Abort-drain latency quantiles from the HistAbortDrainNs family —
	// the mean alone cannot expose tail regressions (Theorem 3's bounds
	// are per-processor, i.e. about the tail, not the average).
	AbortDrainP50Us float64 `json:"abort_drain_p50_us,omitempty"`
	AbortDrainP95Us float64 `json:"abort_drain_p95_us,omitempty"`
	AbortDrainP99Us float64 `json:"abort_drain_p99_us,omitempty"`
	AbortDrainMaxUs float64 `json:"abort_drain_max_us,omitempty"`
	// Task run-time quantiles (HistTaskRunNs): the grain-size distribution
	// of speculative work, the load-balance counterpart of LoadSkew.
	TaskRunP50Us float64 `json:"task_run_p50_us,omitempty"`
	TaskRunP95Us float64 `json:"task_run_p95_us,omitempty"`
	TaskRunP99Us float64 `json:"task_run_p99_us,omitempty"`
	// Steal-retry tail (HistStealRetries): CAS contention per steal
	// attempt that saw work.
	StealRetryP95 float64 `json:"steal_retry_p95,omitempty"`
	StealRetryMax int64   `json:"steal_retry_max,omitempty"`
	// Split-depth quantiles (HistSplitDepth): where in the tree split
	// points open. Spine-only splitting pins these near the root depth;
	// recursive YBWC spreads them down the tree.
	SplitDepthP50  float64 `json:"split_depth_p50,omitempty"`
	SplitDepthMax  int64   `json:"split_depth_max,omitempty"`
	TTProbes       int64   `json:"tt_probes"`
	TTHits         int64   `json:"tt_hits"`
	TTHitRate      float64 `json:"tt_hit_rate"` // TTHits/TTProbes; 0 when no probes
	TTStores       int64   `json:"tt_stores"`
	TTEvictions    int64   `json:"tt_evictions"`
	DequeHighWater int64   `json:"deque_high_water"`
	// LoadSkew is max-over-workers tasks divided by the mean; 1.0 is a
	// perfectly even split, 0 when no tasks ran.
	LoadSkew       float64 `json:"load_skew"`
	PerWorkerTasks []int64 `json:"per_worker_tasks,omitempty"`
	MsgsSent       int64   `json:"msgs_sent,omitempty"`
	MsgsRecv       int64   `json:"msgs_recv,omitempty"`
	MsgsStale      int64   `json:"msgs_stale,omitempty"`
	// Reliability-protocol traffic (faultnet runs only; zero and omitted
	// on the perfect inlined path).
	Retransmits int64 `json:"retransmits,omitempty"`
	Heartbeats  int64 `json:"heartbeats,omitempty"`
	Reassigns   int64 `json:"reassigns,omitempty"`
	// Retransmit-delay and crash-recovery latency quantiles
	// (HistRetransmitDelayNs / HistRecoveryNs).
	RetransmitDelayP50Us float64 `json:"retransmit_delay_p50_us,omitempty"`
	RetransmitDelayP99Us float64 `json:"retransmit_delay_p99_us,omitempty"`
	RecoveryP50Us        float64 `json:"recovery_p50_us,omitempty"`
	RecoveryMaxUs        float64 `json:"recovery_max_us,omitempty"`
	// Distributed serving tier (shard runs only; zero and omitted on
	// single-process runs): task routing, crash reissues, and the remote
	// half of the two-level transposition table.
	ShardTasks    int64 `json:"shard_tasks,omitempty"`
	ShardReissues int64 `json:"shard_reissues,omitempty"`
	RemoteProbes  int64 `json:"remote_probes,omitempty"`
	RemoteHits    int64 `json:"remote_hits,omitempty"`
	RemoteStores  int64 `json:"remote_stores,omitempty"`
	RemoteSkips   int64 `json:"remote_skips,omitempty"`
	// RemoteHitRate is RemoteHits/RemoteProbes; 0 when no remote probes.
	RemoteHitRate float64 `json:"remote_hit_rate,omitempty"`
	// Shard RPC round-trip quantiles (HistShardRPCNs).
	ShardRPCP50Us float64 `json:"shard_rpc_p50_us,omitempty"`
	ShardRPCP99Us float64 `json:"shard_rpc_p99_us,omitempty"`
	ShardRPCMaxUs float64 `json:"shard_rpc_max_us,omitempty"`
	// Proof-number solver traffic (solve runs only; zero and omitted on
	// alpha-beta searches): descent nodes, leaf expansions, ancestor
	// updates, and the depth distribution of the most-proving nodes the
	// workers selected (HistPNMPNDepth) — virtual-number divergence shows
	// up here as a spread, piling onto one leaf as a spike.
	PNNodes       int64   `json:"pn_nodes,omitempty"`
	PNExpands     int64   `json:"pn_expands,omitempty"`
	PNUpdates     int64   `json:"pn_updates,omitempty"`
	PNMPNDepthP50 float64 `json:"pn_mpn_depth_p50,omitempty"`
	PNMPNDepthP95 float64 `json:"pn_mpn_depth_p95,omitempty"`
	PNMPNDepthMax int64   `json:"pn_mpn_depth_max,omitempty"`
}

// Report derives the condensed metrics from a snapshot.
func (s Snapshot) Report() Report {
	t := s.Total
	rep := Report{
		Workers:        len(s.PerWorker),
		Nodes:          t.Nodes,
		Tasks:          t.Tasks,
		Splits:         t.Splits,
		NestedSplits:   t.NestedSplits,
		StealAttempts:  t.StealAttempts,
		Steals:         t.Steals,
		Aborts:         t.Aborts,
		NestedAborts:   t.NestedAborts,
		AbortDrains:    t.AbortDrains,
		TTProbes:       t.TTProbes,
		TTHits:         t.TTHits,
		TTStores:       t.TTStores,
		TTEvictions:    t.TTEvictions,
		DequeHighWater: t.DequeMax,
	}
	if t.StealAttempts > 0 {
		rep.StealEfficiency = float64(t.Steals) / float64(t.StealAttempts)
	}
	if t.AbortDrains > 0 {
		rep.AbortDrainMeanUs = float64(t.AbortDrainNs) / float64(t.AbortDrains) / 1e3
	}
	if drain := s.Hist[HistAbortDrainNs]; drain.Count > 0 {
		rep.AbortDrainP50Us = drain.P50() / 1e3
		rep.AbortDrainP95Us = drain.P95() / 1e3
		rep.AbortDrainP99Us = drain.P99() / 1e3
		rep.AbortDrainMaxUs = float64(drain.Max) / 1e3
	}
	if run := s.Hist[HistTaskRunNs]; run.Count > 0 {
		rep.TaskRunP50Us = run.P50() / 1e3
		rep.TaskRunP95Us = run.P95() / 1e3
		rep.TaskRunP99Us = run.P99() / 1e3
	}
	if sr := s.Hist[HistStealRetries]; sr.Count > 0 {
		rep.StealRetryP95 = sr.P95()
		rep.StealRetryMax = sr.Max
	}
	if sd := s.Hist[HistSplitDepth]; sd.Count > 0 {
		rep.SplitDepthP50 = sd.P50()
		rep.SplitDepthMax = sd.Max
	}
	if t.TTProbes > 0 {
		rep.TTHitRate = float64(t.TTHits) / float64(t.TTProbes)
	}
	if len(s.PerWorker) > 0 && t.Tasks > 0 {
		var max int64
		rep.PerWorkerTasks = make([]int64, len(s.PerWorker))
		for i, w := range s.PerWorker {
			rep.PerWorkerTasks[i] = w.Tasks
			if w.Tasks > max {
				max = w.Tasks
			}
		}
		mean := float64(t.Tasks) / float64(len(s.PerWorker))
		rep.LoadSkew = float64(max) / mean
	}
	rep.MsgsSent = t.MsgsSent
	rep.MsgsRecv = t.MsgsRecv
	rep.MsgsStale = t.MsgsStale
	rep.Retransmits = t.Retransmits
	rep.Heartbeats = t.Heartbeats
	rep.Reassigns = t.Reassigns
	if rt := s.Hist[HistRetransmitDelayNs]; rt.Count > 0 {
		rep.RetransmitDelayP50Us = rt.P50() / 1e3
		rep.RetransmitDelayP99Us = rt.P99() / 1e3
	}
	if rc := s.Hist[HistRecoveryNs]; rc.Count > 0 {
		rep.RecoveryP50Us = rc.P50() / 1e3
		rep.RecoveryMaxUs = float64(rc.Max) / 1e3
	}
	rep.ShardTasks = t.ShardTasks
	rep.ShardReissues = t.ShardReissues
	rep.RemoteProbes = t.RemoteProbes
	rep.RemoteHits = t.RemoteHits
	rep.RemoteStores = t.RemoteStores
	rep.RemoteSkips = t.RemoteSkips
	if t.RemoteProbes > 0 {
		rep.RemoteHitRate = float64(t.RemoteHits) / float64(t.RemoteProbes)
	}
	if rpc := s.Hist[HistShardRPCNs]; rpc.Count > 0 {
		rep.ShardRPCP50Us = rpc.P50() / 1e3
		rep.ShardRPCP99Us = rpc.P99() / 1e3
		rep.ShardRPCMaxUs = float64(rpc.Max) / 1e3
	}
	rep.PNNodes = t.PNNodes
	rep.PNExpands = t.PNExpands
	rep.PNUpdates = t.PNUpdates
	if mpn := s.Hist[HistPNMPNDepth]; mpn.Count > 0 {
		rep.PNMPNDepthP50 = mpn.P50()
		rep.PNMPNDepthP95 = mpn.P95()
		rep.PNMPNDepthMax = mpn.Max
	}
	return rep
}
