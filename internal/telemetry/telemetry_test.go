package telemetry

import (
	"sync"
	"testing"
)

// TestNilRecorderSafe: a nil *Recorder is the documented "telemetry off"
// value — every method must be a no-op, not a panic.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if s := r.Shard(3); s != nil {
		t.Fatalf("nil recorder returned shard %v", s)
	}
	if r.Now() != 0 {
		t.Fatal("nil recorder Now() != 0")
	}
	if r.TraceEnabled() {
		t.Fatal("nil recorder claims tracing")
	}
	r.EnableTrace(10)
	r.RecordSpan(Span{})
	r.Reset()
	if spans, dropped := r.Spans(); spans != nil || dropped != 0 {
		t.Fatalf("nil recorder has spans %v dropped %d", spans, dropped)
	}
	snap := r.Snapshot()
	if len(snap.PerWorker) != 0 || snap.Total != (Counts{}) {
		t.Fatalf("nil recorder snapshot not empty: %+v", snap)
	}
}

// TestShardGrowthAndIdentity: Shard(i) grows the shard set as needed and
// is stable — the same index always returns the same block.
func TestShardGrowthAndIdentity(t *testing.T) {
	r := NewRecorder()
	s5 := r.Shard(5)
	if s5 == nil {
		t.Fatal("Shard(5) returned nil")
	}
	if got := len(r.Snapshot().PerWorker); got != 6 {
		t.Fatalf("shard set grew to %d, want 6", got)
	}
	if r.Shard(5) != s5 || r.Shard(2) == s5 {
		t.Fatal("shard identity broken")
	}
	if r.Shard(-1) != nil {
		t.Fatal("negative index must return nil")
	}
}

// TestSnapshotSumsShards: Snapshot.Total must be the exact field-wise sum
// of the shards, except DequeMax which takes the max.
func TestSnapshotSumsShards(t *testing.T) {
	r := NewRecorder()
	a, b := r.Shard(0), r.Shard(1)
	a.Tasks.Add(3)
	b.Tasks.Add(4)
	a.Steals.Add(1)
	b.StealAttempts.Add(2)
	a.TTProbes.Add(10)
	a.TTHits.Add(7)
	a.ObserveDeque(5)
	b.ObserveDeque(9)
	b.ObserveDeque(2) // must not lower the mark
	a.MsgsSent.Add(11)
	b.MsgsStale.Add(1)

	snap := r.Snapshot()
	if snap.Total.Tasks != 7 || snap.Total.Steals != 1 || snap.Total.StealAttempts != 2 {
		t.Fatalf("bad sums: %+v", snap.Total)
	}
	if snap.Total.DequeMax != 9 {
		t.Fatalf("DequeMax %d, want max 9", snap.Total.DequeMax)
	}
	if snap.Total.TTProbes != 10 || snap.Total.TTHits != 7 {
		t.Fatalf("TT sums: %+v", snap.Total)
	}
	if snap.Total.MsgsSent != 11 || snap.Total.MsgsStale != 1 {
		t.Fatalf("msg sums: %+v", snap.Total)
	}
	if snap.PerWorker[0].Tasks != 3 || snap.PerWorker[1].Tasks != 4 {
		t.Fatalf("per-worker view lost: %+v", snap.PerWorker)
	}
}

// TestReportDerivations pins the derived ratios: steal efficiency, TT hit
// rate, abort-drain mean and load skew, including the no-denominator
// cases which must read 0 rather than NaN.
func TestReportDerivations(t *testing.T) {
	r := NewRecorder()
	a, b := r.Shard(0), r.Shard(1)
	a.Tasks.Add(30)
	b.Tasks.Add(10)
	a.StealAttempts.Add(8)
	a.Steals.Add(6)
	a.AbortDrains.Add(2)
	a.AbortDrainNs.Add(4000) // mean 2000ns = 2µs
	a.TTProbes.Add(100)
	a.TTHits.Add(25)
	rep := r.Snapshot().Report()
	if rep.Workers != 2 {
		t.Fatalf("workers %d", rep.Workers)
	}
	if rep.StealEfficiency != 0.75 {
		t.Fatalf("steal efficiency %v, want 0.75", rep.StealEfficiency)
	}
	if rep.TTHitRate != 0.25 {
		t.Fatalf("tt hit rate %v, want 0.25", rep.TTHitRate)
	}
	if rep.AbortDrainMeanUs != 2.0 {
		t.Fatalf("abort drain mean %vµs, want 2", rep.AbortDrainMeanUs)
	}
	// max 30 over mean (40/2)=20 → skew 1.5
	if rep.LoadSkew != 1.5 {
		t.Fatalf("load skew %v, want 1.5", rep.LoadSkew)
	}
	if len(rep.PerWorkerTasks) != 2 || rep.PerWorkerTasks[0] != 30 || rep.PerWorkerTasks[1] != 10 {
		t.Fatalf("per-worker tasks %v", rep.PerWorkerTasks)
	}

	empty := NewRecorder().Snapshot().Report()
	if empty.StealEfficiency != 0 || empty.TTHitRate != 0 || empty.AbortDrainMeanUs != 0 || empty.LoadSkew != 0 {
		t.Fatalf("empty report has non-zero ratios: %+v", empty)
	}
}

// TestReset zeroes counters and spans but keeps the shard set and the
// tracing flag.
func TestReset(t *testing.T) {
	r := NewRecorder()
	r.EnableTrace(0)
	r.Shard(1).Tasks.Add(5)
	r.RecordSpan(Span{Name: "split", End: 10})
	r.Reset()
	snap := r.Snapshot()
	if len(snap.PerWorker) != 2 {
		t.Fatalf("Reset dropped shards: %d", len(snap.PerWorker))
	}
	if snap.Total.Tasks != 0 {
		t.Fatalf("Reset kept counters: %+v", snap.Total)
	}
	if spans, _ := r.Spans(); len(spans) != 0 {
		t.Fatalf("Reset kept %d spans", len(spans))
	}
	if !r.TraceEnabled() {
		t.Fatal("Reset cleared the tracing flag")
	}
}

// TestSnapshotConcurrentWithWrites: Snapshot must be callable while the
// single writer of each shard is incrementing. Under -race this is the
// proof that the atomics make mid-run snapshots safe.
func TestSnapshotConcurrentWithWrites(t *testing.T) {
	r := NewRecorder()
	const writers = 4
	const perWriter = 10000
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		sh := r.Shard(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				sh.Tasks.Add(1)
				sh.ObserveDeque(int64(j % 7))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
			default:
			}
			snap := r.Snapshot()
			if snap.Total.Tasks > writers*perWriter {
				t.Errorf("overcount: %d", snap.Total.Tasks)
				return
			}
			if snap.Total.Tasks == writers*perWriter {
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.Snapshot().Total.Tasks; got != writers*perWriter {
		t.Fatalf("final count %d, want %d", got, writers*perWriter)
	}
}
