package telemetry

// Span recording and the Chrome trace_event writer. Spans model split-
// point lifetimes: a split opens when the sibling tasks are pushed, the
// owner starts joining (helping) immediately after, and the split drains
// when the last sibling completes. WriteTrace emits the spans in the
// Trace Event Format consumed by chrome://tracing and Perfetto: one "X"
// (complete) event per span on the owning worker's track, with the
// join-to-drain wait as a nested event, so stalls and abort storms are
// visible at a glance.

import (
	"encoding/json"
	"fmt"
	"io"
)

// Span is one recorded split-point lifetime. Times are Recorder.Now()
// nanoseconds (monotonic since the recorder's epoch).
type Span struct {
	Worker  int    // owning worker (trace track)
	Name    string // event name, e.g. "split"
	Start   int64  // split opened (tasks pushed)
	Join    int64  // owner began helping/joining
	End     int64  // join drained
	Tasks   int    // sibling tasks scheduled
	Aborted bool   // a beta cutoff pre-empted the split
}

// RecordSpan appends a span if tracing is on; past the buffer bound it
// only counts the drop. Safe from any worker.
func (r *Recorder) RecordSpan(s Span) {
	if !r.TraceEnabled() {
		return
	}
	r.mu.Lock()
	if len(r.spans) < r.maxSpans {
		r.spans = append(r.spans, s)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans and the number dropped past
// the buffer bound.
func (r *Recorder) Spans() ([]Span, int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...), r.dropped
}

// traceEvent is one entry of the Trace Event Format. Durations and
// timestamps are microseconds (floats), per the format.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteTrace emits spans as a Chrome trace_event JSON document. The
// output is deterministic for a given span slice (golden-testable): one
// object per line, spans in recording order, each as a "split" complete
// event plus a nested "join" event covering the help-until-drain phase.
func WriteTrace(w io.Writer, spans []Span) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(e traceEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep, first = "", false
		}
		_, err = fmt.Fprintf(w, "%s%s", sep, b)
		return err
	}
	for _, s := range spans {
		name := s.Name
		if name == "" {
			name = "split"
		}
		if err := emit(traceEvent{
			Name: name, Cat: "search", Ph: "X", Pid: 0, Tid: s.Worker,
			Ts: us(s.Start), Dur: us(s.End - s.Start),
			Args: map[string]any{"aborted": s.Aborted, "tasks": s.Tasks},
		}); err != nil {
			return err
		}
		if err := emit(traceEvent{
			Name: name + ".join", Cat: "search", Ph: "X", Pid: 0, Tid: s.Worker,
			Ts: us(s.Join), Dur: us(s.End - s.Join),
		}); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// WriteTrace emits this recorder's spans (see the package-level
// WriteTrace). Nil-safe: a nil recorder writes an empty trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	spans, _ := r.Spans()
	return WriteTrace(w, spans)
}
