package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteTraceGolden pins the exact trace_event output for a fixed span
// slice: the Chrome/Perfetto loaders are outside our tests, so the format
// is frozen byte-for-byte here.
func TestWriteTraceGolden(t *testing.T) {
	spans := []Span{
		{Worker: 0, Name: "split", Start: 1000, Join: 2500, End: 4000, Tasks: 3, Aborted: false},
		{Worker: 2, Name: "", Start: 5000, Join: 5000, End: 9500, Tasks: 1, Aborted: true},
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, spans); err != nil {
		t.Fatal(err)
	}
	const want = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"split","cat":"search","ph":"X","pid":0,"tid":0,"ts":1,"dur":3,"args":{"aborted":false,"tasks":3}},
{"name":"split.join","cat":"search","ph":"X","pid":0,"tid":0,"ts":2.5,"dur":1.5},
{"name":"split","cat":"search","ph":"X","pid":0,"tid":2,"ts":5,"dur":4.5,"args":{"aborted":true,"tasks":1}},
{"name":"split.join","cat":"search","ph":"X","pid":0,"tid":2,"ts":5,"dur":4.5}
]}
`
	if sb.String() != want {
		t.Fatalf("trace output drifted:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestWriteTraceParses: the golden bytes must also be valid JSON with the
// structure the viewers expect.
func TestWriteTraceParses(t *testing.T) {
	r := NewRecorder()
	r.EnableTrace(0)
	r.RecordSpan(Span{Worker: 1, Start: 10, Join: 20, End: 30, Tasks: 2})
	var sb strings.Builder
	if err := r.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 2 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	if doc.TraceEvents[0].Ph != "X" || doc.TraceEvents[0].Ts != 0.01 {
		t.Fatalf("unexpected first event: %+v", doc.TraceEvents[0])
	}
}

// TestEmptyTrace: no spans still yields a loadable document (and a nil
// recorder writes the same).
func TestEmptyTrace(t *testing.T) {
	for _, r := range []*Recorder{nil, NewRecorder()} {
		var sb strings.Builder
		if err := r.WriteTrace(&sb); err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
			t.Fatalf("empty trace not valid JSON: %v", err)
		}
	}
}

// TestSpanCap: spans beyond the EnableTrace bound are counted as dropped,
// not stored — tracing a long search must not grow memory without limit.
func TestSpanCap(t *testing.T) {
	r := NewRecorder()
	r.EnableTrace(3)
	for i := 0; i < 10; i++ {
		r.RecordSpan(Span{Start: int64(i)})
	}
	spans, dropped := r.Spans()
	if len(spans) != 3 || dropped != 7 {
		t.Fatalf("got %d spans, %d dropped; want 3 and 7", len(spans), dropped)
	}
	// Tracing off: RecordSpan must be a no-op.
	r2 := NewRecorder()
	r2.RecordSpan(Span{})
	if spans, _ := r2.Spans(); len(spans) != 0 {
		t.Fatal("span recorded with tracing off")
	}
}
