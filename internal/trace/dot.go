package trace

import (
	"bufio"
	"fmt"
	"io"

	"gametree/internal/core"
	"gametree/internal/tree"
)

// WriteDOTFrame renders the tree state after `upto` steps of a traced run
// as Graphviz DOT: leaves evaluated in earlier steps are gray, leaves
// evaluated at exactly step `upto` are highlighted, the current base path
// is drawn bold. Rendering one frame per step yields an animation of the
// cascade.
func WriteDOTFrame(w io.Writer, t *tree.Tree, steps []core.StepTrace, upto int) error {
	if upto < 0 || upto >= len(steps) {
		return fmt.Errorf("trace: frame %d out of range [0,%d)", upto, len(steps))
	}
	done := map[tree.NodeID]bool{}
	for i := 0; i < upto; i++ {
		for _, l := range steps[i].Leaves {
			done[l] = true
		}
	}
	now := map[tree.NodeID]bool{}
	for _, l := range steps[upto].Leaves {
		now[l] = true
	}
	onPath := map[tree.NodeID]bool{}
	for _, v := range steps[upto].BasePath {
		onPath[v] = true
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph step%d {\n  ordering=out;\n  label=\"step %d, degree %d\";\n",
		upto+1, upto+1, steps[upto].Degree())
	for id := range t.Nodes {
		nd := t.Node(tree.NodeID(id))
		attrs := ""
		switch {
		case now[tree.NodeID(id)]:
			attrs = ",style=filled,fillcolor=black,fontcolor=white"
		case done[tree.NodeID(id)]:
			attrs = ",style=filled,fillcolor=gray80"
		case onPath[tree.NodeID(id)]:
			attrs = ",penwidth=2"
		}
		if nd.NumChildren == 0 {
			fmt.Fprintf(bw, "  n%d [shape=box,label=\"%d\"%s];\n", id, nd.Value, attrs)
			continue
		}
		label := "NOR"
		if t.Kind == tree.MinMax {
			if t.IsMaxNode(tree.NodeID(id)) {
				label = "MAX"
			} else {
				label = "MIN"
			}
		}
		fmt.Fprintf(bw, "  n%d [label=%q%s];\n", id, label, attrs)
		for i := int32(0); i < nd.NumChildren; i++ {
			c := nd.FirstChild + tree.NodeID(i)
			edge := ""
			if onPath[tree.NodeID(id)] && onPath[c] {
				edge = " [penwidth=2]"
			}
			fmt.Fprintf(bw, "  n%d -> n%d%s;\n", id, c, edge)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteDOTFrames writes one frame per step, each through the sink callback
// (typically creating one file per frame).
func WriteDOTFrames(t *tree.Tree, steps []core.StepTrace, sink func(step int) (io.WriteCloser, error)) error {
	for i := range steps {
		w, err := sink(i)
		if err != nil {
			return err
		}
		if err := WriteDOTFrame(w, t, steps, i); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}
