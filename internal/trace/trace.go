// Package trace renders step-by-step executions of the paper's algorithms
// in human-readable form: per-step listings with base paths and codes (the
// Proposition 3 proof objects), an ASCII evaluation timeline (which leaf
// was evaluated at which step — the visual form of the parallel degree),
// and indented tree dumps. It is the debugging and teaching layer behind
// cmd/gttrace.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gametree/internal/core"
	"gametree/internal/tree"
)

// WriteSteps renders one line per step: the step number, the parallel
// degree, the base-path code, and the evaluated leaves.
func WriteSteps(w io.Writer, t *tree.Tree, steps []core.StepTrace) error {
	bw := bufio.NewWriter(w)
	for i, st := range steps {
		fmt.Fprintf(bw, "step %3d  degree %2d  code %v  leaves", i+1, st.Degree(), st.Code)
		for _, l := range st.Leaves {
			fmt.Fprintf(bw, " %d", l)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WriteTimeline renders a Gantt-style chart: one row per leaf (in
// left-to-right order), with a mark in the column of the step that
// evaluated it. Leaves never evaluated (pruned) show as dashes. Wide runs
// are truncated to maxSteps columns (0 means no limit).
func WriteTimeline(w io.Writer, t *tree.Tree, steps []core.StepTrace, maxSteps int) error {
	when := map[tree.NodeID]int{}
	for i, st := range steps {
		for _, l := range st.Leaves {
			when[l] = i + 1
		}
	}
	n := len(steps)
	if maxSteps > 0 && n > maxSteps {
		n = maxSteps
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-8s %-6s  timeline (steps 1..%d)\n", "leaf", "step", n)
	for _, l := range t.Leaves() {
		step := when[l]
		fmt.Fprintf(bw, "%-8d ", l)
		if step == 0 {
			fmt.Fprintf(bw, "%-6s  %s\n", "-", strings.Repeat(".", n))
			continue
		}
		fmt.Fprintf(bw, "%-6d  ", step)
		for i := 1; i <= n; i++ {
			if i == step {
				bw.WriteByte('#')
			} else {
				bw.WriteByte('.')
			}
		}
		if step > n {
			fmt.Fprintf(bw, " (step %d beyond window)", step)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteTree renders the tree with indentation, marking each node's kind
// and each leaf's value. evaluated, when non-nil, marks evaluated leaves
// with '*'.
func WriteTree(w io.Writer, t *tree.Tree, evaluated map[tree.NodeID]bool) error {
	bw := bufio.NewWriter(w)
	var walk func(v tree.NodeID)
	walk = func(v tree.NodeID) {
		nd := t.Node(v)
		indent := strings.Repeat("  ", int(nd.Depth))
		if nd.NumChildren == 0 {
			mark := ""
			if evaluated != nil && evaluated[v] {
				mark = " *"
			}
			fmt.Fprintf(bw, "%s%d=%d%s\n", indent, v, nd.Value, mark)
			return
		}
		label := "NOR"
		if t.Kind == tree.MinMax {
			if t.IsMaxNode(v) {
				label = "MAX"
			} else {
				label = "MIN"
			}
		}
		fmt.Fprintf(bw, "%s%d:%s\n", indent, v, label)
		for i := int32(0); i < nd.NumChildren; i++ {
			walk(nd.FirstChild + tree.NodeID(i))
		}
	}
	walk(t.Root())
	return bw.Flush()
}

// Summary aggregates a traced run for quick inspection.
type Summary struct {
	Steps        int
	Work         int
	MaxDegree    int
	MeanDegree   float64
	CodesOrdered bool // codes strictly decreasing (width-1 property)
}

// Summarize computes the Summary of a traced run.
func Summarize(steps []core.StepTrace) Summary {
	s := Summary{Steps: len(steps), CodesOrdered: true}
	for i, st := range steps {
		d := st.Degree()
		s.Work += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if i > 0 && core.CompareCodes(st.Code, steps[i-1].Code) >= 0 {
			s.CodesOrdered = false
		}
	}
	if s.Steps > 0 {
		s.MeanDegree = float64(s.Work) / float64(s.Steps)
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("steps=%d work=%d max-degree=%d mean-degree=%.2f codes-decreasing=%v",
		s.Steps, s.Work, s.MaxDegree, s.MeanDegree, s.CodesOrdered)
}
