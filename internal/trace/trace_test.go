package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"gametree/internal/core"
	"gametree/internal/tree"
)

func tracedRun(t *testing.T, tr *tree.Tree, w int) []core.StepTrace {
	t.Helper()
	steps, m, err := core.TraceParallelSolve(tr, w, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Value != tr.Evaluate() {
		t.Fatal("traced run computed a wrong value")
	}
	return steps
}

func TestWriteSteps(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 4, 1)
	steps := tracedRun(t, tr, 1)
	var buf bytes.Buffer
	if err := WriteSteps(&buf, tr, steps); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "step   1") || !strings.Contains(out, "degree") {
		t.Errorf("missing step lines:\n%s", out)
	}
	if strings.Count(out, "\n") != len(steps) {
		t.Errorf("expected %d lines", len(steps))
	}
}

func TestWriteTimeline(t *testing.T) {
	tr := tree.BestCaseNOR(2, 4, 1)
	steps := tracedRun(t, tr, 1)
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, tr, steps, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every evaluated leaf shows a '#'; pruned leaves show '-'.
	if !strings.Contains(out, "#") {
		t.Error("no evaluation marks")
	}
	if !strings.Contains(out, "-") {
		t.Error("best-case run should leave pruned leaves unmarked")
	}
	// Truncated window still renders.
	var buf2 bytes.Buffer
	if err := WriteTimeline(&buf2, tr, steps, 2); err != nil {
		t.Fatal(err)
	}
	if len(buf2.String()) == 0 {
		t.Error("empty truncated timeline")
	}
}

func TestWriteTree(t *testing.T) {
	tr := tree.FromNested(tree.MinMax, []any{[]any{3, 5}, 7})
	var buf bytes.Buffer
	if err := WriteTree(&buf, tr, map[tree.NodeID]bool{3: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MAX", "MIN", "=7", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	nor := tree.IIDNor(2, 2, 0.5, 1)
	buf.Reset()
	if err := WriteTree(&buf, nor, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NOR") {
		t.Error("NOR label missing")
	}
}

func TestSummarize(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 6, 1)
	steps := tracedRun(t, tr, 1)
	s := Summarize(steps)
	if s.Steps != len(steps) || s.Work != 64 {
		t.Errorf("summary %+v", s)
	}
	if !s.CodesOrdered {
		t.Error("width-1 codes must decrease")
	}
	if s.MeanDegree <= 1 || s.MaxDegree < 2 {
		t.Errorf("degenerate degrees: %+v", s)
	}
	if !strings.Contains(s.String(), "codes-decreasing=true") {
		t.Errorf("String: %s", s)
	}
	if got := Summarize(nil); got.Steps != 0 || got.MeanDegree != 0 {
		t.Errorf("empty summary %+v", got)
	}
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

func TestWriteDOTFrames(t *testing.T) {
	tr := tree.WorstCaseNOR(2, 3, 1)
	steps := tracedRun(t, tr, 1)
	var frames []*bytes.Buffer
	err := WriteDOTFrames(tr, steps, func(step int) (io.WriteCloser, error) {
		b := &bytes.Buffer{}
		frames = append(frames, b)
		return nopCloser{b}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(steps) {
		t.Fatalf("%d frames for %d steps", len(frames), len(steps))
	}
	first := frames[0].String()
	for _, want := range []string{"digraph step1", "fillcolor=black", "penwidth=2", "ordering=out"} {
		if !strings.Contains(first, want) {
			t.Errorf("frame 0 missing %q", want)
		}
	}
	// Later frames must show earlier work grayed out.
	if !strings.Contains(frames[len(frames)-1].String(), "gray80") {
		t.Error("final frame shows no history")
	}
	var buf bytes.Buffer
	if err := WriteDOTFrame(&buf, tr, steps, -1); err == nil {
		t.Error("out-of-range frame accepted")
	}
}
