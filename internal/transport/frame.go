package transport

// Wire framing: every packet crosses a TCP stream as one length-prefixed
// frame so the reader can recover message boundaries from the byte
// stream. The layout is deliberately dumb —
//
//	uint32  length of the rest of the frame (big endian)
//	int32   From processor id (big endian, two's complement; -1 legal)
//	int32   To processor id
//	bytes   codec payload
//
// — because everything interesting (sequence numbers, acks, dedup,
// retransmission) lives a layer up, in msgpass/reliable.go or the shard
// RPC protocol. The transport's only framing obligations are that a
// frame is delivered whole or not at all, and that a hostile or corrupt
// stream is rejected rather than trusted (bounded length, error on
// short frames).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"gametree/internal/faultnet"
)

// MaxFrame bounds one frame's payload so a corrupt length prefix cannot
// make the reader allocate gigabytes. Shard tasks and msgpass frames are
// all well under a kilobyte; 1 MiB leaves room for future payloads.
const MaxFrame = 1 << 20

const headerLen = 8 // From + To, after the length prefix

// instanceProc is the pseudo-processor id on preamble frames: the first
// frame an acceptor writes back down every inbound connection, carrying
// its 8-byte instance identity. Dialers consume it before entering the
// send loop; it never reaches the delivery callback.
const instanceProc = -2

var (
	errFrameTooBig   = errors.New("transport: frame exceeds MaxFrame")
	errFrameTooShort = errors.New("transport: frame shorter than its header")
)

// appendFrame encodes pkt (with its payload already encoded to body)
// onto dst in wire order and returns the extended slice.
func appendFrame(dst []byte, from, to int, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(headerLen+len(body)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(from)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(to)))
	return append(dst, body...)
}

// EncodeFrame renders one packet as a complete wire frame using the
// codec for the payload.
func EncodeFrame(pkt faultnet.Packet, c Codec) ([]byte, error) {
	body, err := c.Encode(pkt.Payload)
	if err != nil {
		return nil, fmt.Errorf("transport: encode payload: %w", err)
	}
	if headerLen+len(body) > MaxFrame {
		return nil, errFrameTooBig
	}
	return appendFrame(make([]byte, 0, 4+headerLen+len(body)), pkt.From, pkt.To, body), nil
}

// DecodeFrame parses one complete wire frame (including the length
// prefix) back into a packet. It is the inverse of EncodeFrame and must
// never panic on arbitrary input — FuzzFrameRoundTrip holds it to that.
func DecodeFrame(frame []byte, c Codec) (faultnet.Packet, error) {
	if len(frame) < 4 {
		return faultnet.Packet{}, errFrameTooShort
	}
	n := binary.BigEndian.Uint32(frame)
	if n > MaxFrame {
		return faultnet.Packet{}, errFrameTooBig
	}
	if n < headerLen || len(frame) != int(4+n) {
		return faultnet.Packet{}, errFrameTooShort
	}
	return decodeBody(frame[4:], c)
}

// decodeBody parses the post-length portion of a frame.
func decodeBody(body []byte, c Codec) (faultnet.Packet, error) {
	if len(body) < headerLen {
		return faultnet.Packet{}, errFrameTooShort
	}
	pkt := faultnet.Packet{
		From: int(int32(binary.BigEndian.Uint32(body))),
		To:   int(int32(binary.BigEndian.Uint32(body[4:]))),
	}
	payload, err := c.Decode(body[headerLen:])
	if err != nil {
		return faultnet.Packet{}, fmt.Errorf("transport: decode payload: %w", err)
	}
	pkt.Payload = payload
	return pkt, nil
}

// readFrame reads one frame body (From/To/payload, without the length
// prefix) from r into buf, growing it as needed, and returns the slice
// holding the body.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n > MaxFrame {
		return nil, errFrameTooBig
	}
	if n < headerLen {
		return nil, errFrameTooShort
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
