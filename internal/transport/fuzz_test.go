package transport

import (
	"bytes"
	"testing"

	"gametree/internal/faultnet"
)

// FuzzFrameRoundTrip holds the frame codec to two properties: every
// encodable packet round-trips exactly, and DecodeFrame never panics on
// arbitrary bytes — a hostile peer can write anything into the socket.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(0, 1, []byte("hello"))
	f.Add(-1, 3, []byte{})
	f.Add(7, -1, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(1<<20, -(1 << 20), bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, from, to int, payload []byte) {
		pkt := faultnet.Packet{From: from, To: to, Payload: payload}
		frame, err := EncodeFrame(pkt, Bytes{})
		if err != nil {
			if len(payload)+headerLen > MaxFrame {
				return // oversized payloads are rejected, correctly
			}
			t.Fatalf("encode failed for %d-byte payload: %v", len(payload), err)
		}
		got, err := DecodeFrame(frame, Bytes{})
		if err != nil {
			t.Fatalf("decode of our own frame failed: %v", err)
		}
		// From/To travel as int32 on the wire; ids beyond that range
		// truncate, and the round-trip contract covers the int32 window
		// (proc ids are small ints, -1 for the coordinator/monitor).
		if int32(from) == int32(int64(from)) && got.From != int(int32(from)) {
			t.Fatalf("from: got %d, want %d", got.From, int32(from))
		}
		if got.To != int(int32(to)) {
			t.Fatalf("to: got %d, want %d", got.To, int32(to))
		}
		if !bytes.Equal(got.Payload.([]byte), payload) {
			t.Fatalf("payload: got %x, want %x", got.Payload, payload)
		}

		// Arbitrary input must produce an error or a packet, never a
		// panic: feed the fuzzed payload itself to the decoder.
		if pkt, err := DecodeFrame(payload, Bytes{}); err == nil {
			if 4+headerLen > len(payload) {
				t.Fatalf("decode accepted a %d-byte frame: %+v", len(payload), pkt)
			}
		}
	})
}
