package transport

import (
	"time"

	"gametree/internal/faultnet"
)

// chaosStack layers a seeded fault injector over a real transport: the
// injector makes every fault decision (drop, dup, delay, reorder, crash,
// stall) exactly as it does in-process, and the packets that survive are
// carried by the lower transport's sockets. Composition is by callback
// plumbing — the injector's "deliver" is the lower transport's Send —
// so neither side changes for the other.
type chaosStack struct {
	inj   *faultnet.Injector
	lower faultnet.Network
}

// Chaos returns the composed network: inj decides the faults, lower
// carries the survivors. The chaos regression matrix runs unchanged
// over real sockets by swapping its Injector for
// Chaos(injector, tcpTransport).
func Chaos(inj *faultnet.Injector, lower faultnet.Network) faultnet.Network {
	return &chaosStack{inj: inj, lower: lower}
}

func (c *chaosStack) Start(deliver func(faultnet.Packet)) {
	// Final delivery comes off the lower transport's reader goroutines;
	// the injector hands its surviving packets to the lower Send.
	c.lower.Start(func(pkt faultnet.Packet) {
		// A crash that fired while the packet was on the wire still
		// silences the destination, matching the bare injector's
		// deliverNow gate.
		if !c.inj.Alive(pkt.To) {
			return
		}
		deliver(pkt)
	})
	c.inj.Start(c.lower.Send)
}

func (c *chaosStack) Send(pkt faultnet.Packet) { c.inj.Send(pkt) }

// Alive and StalledUntil expose the injector's failure schedule: the
// protocols gate their heartbeat emission on these, exactly as they do
// on the bare injector.
func (c *chaosStack) Alive(proc int) bool { return c.inj.Alive(proc) }

func (c *chaosStack) StalledUntil(proc int) (time.Time, bool) { return c.inj.StalledUntil(proc) }

func (c *chaosStack) Close() {
	c.inj.Close()
	c.lower.Close()
}

// Stats reports the injector's view — the semantic fault counters the
// chaos assertions read. The lower transport's socket-level counters
// remain available from the transport itself.
func (c *chaosStack) Stats() faultnet.Stats { return c.inj.Stats() }
