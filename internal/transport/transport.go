// Package transport is the real-socket realization of the
// faultnet.Network interface: length-prefixed frames over TCP, one
// ordered stream per destination process, reconnect with exponential
// backoff. It exists so everything built against faultnet — the
// ack/retransmit/heartbeat/fencing protocol in internal/msgpass and the
// seeded chaos injector — runs unchanged whether the "network" is a
// function call or a kernel socket, and so the shard tier
// (internal/shard) can put a coordinator and its workers in separate
// processes.
//
// Semantics, deliberately weaker than TCP's:
//
//   - Send never blocks. Each peer has a bounded outbound queue drained
//     by one writer goroutine; when the peer is unreachable (dialing,
//     backing off, queue full) packets are DROPPED and counted, not
//     buffered without bound. The transport is honest about being a
//     lossy network — reliability is the caller's job (msgpass
//     retransmits, shard reissues), which is exactly what lets the
//     chaos-hardened protocols run over it without modification.
//   - Per-link FIFO between two live endpoints: one TCP stream per
//     destination process, so packets that are not dropped arrive in
//     send order. A reconnect may lose the packets in flight around the
//     break; ordering restarts on the new stream.
//   - Alive is always true: raw TCP has no failure detector. Crash
//     semantics come from layering (Chaos wraps an Injector's schedule
//     around a transport) or from the caller's own heartbeats.
//
// Payloads cross as bytes via a caller-supplied Codec; the transport
// never interprets them.
package transport

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gametree/internal/faultnet"
)

// Codec translates packet payloads to and from wire bytes. Encode is
// called on the sender's goroutine and must be safe for concurrent use;
// Decode runs on reader goroutines.
type Codec interface {
	Encode(payload any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// Bytes is the trivial codec for callers whose payloads already are
// byte slices.
type Bytes struct{}

func (Bytes) Encode(payload any) ([]byte, error) {
	b, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("transport: Bytes codec got %T, want []byte", payload)
	}
	return b, nil
}

func (Bytes) Decode(data []byte) (any, error) {
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Config parameterizes a TCP transport. Zero values take the defaults
// noted on each field.
type Config struct {
	// Listen is the address to accept peer connections on
	// ("127.0.0.1:0" binds an ephemeral port; read it back with Addr).
	// Empty means send-only: no listener, inbound delivery only via
	// loopback sends.
	Listen string
	// Local is the set of processor ids hosted by this transport:
	// packets addressed to them are delivered here.
	Local []int
	// Peers maps remote processor ids to their transport addresses.
	// Multiple processors may share one address (one process hosting
	// several procs shares one stream). SetPeer adds or moves entries
	// later — the shard tier uses that for portfile-discovered and
	// hello-announced addresses.
	Peers map[int]string
	// Codec encodes payloads; required.
	Codec Codec
	// Loopback forces packets addressed to local processors through the
	// listener socket instead of the in-process fast path, so
	// single-process tests exercise real frames, real buffers and real
	// kernel scheduling on every hop.
	Loopback bool
	// QueueLen bounds each peer's outbound queue (default 1024).
	QueueLen int
	// DialBackoff and DialBackoffMax shape reconnect pacing: the first
	// redial waits DialBackoff, doubling per failure up to
	// DialBackoffMax (defaults 20ms and 1s).
	DialBackoff    time.Duration
	DialBackoffMax time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 20 * time.Millisecond
	}
	if c.DialBackoffMax <= 0 {
		c.DialBackoffMax = time.Second
	}
	return c
}

// peer is one outbound stream: a bounded queue of encoded frames and
// the writer goroutine that owns the connection to addr.
type peer struct {
	addr  string
	queue chan []byte
	done  chan struct{}

	mu     sync.Mutex
	conn   net.Conn // active connection, for shutdown to sever
	closed bool
}

// setConn records the writer's active connection so shutdown can close
// it out from under a blocked Write. A set that loses the race with
// shutdown closes the connection immediately.
func (p *peer) setConn(c net.Conn) {
	p.mu.Lock()
	if p.closed && c != nil {
		c.Close()
	}
	p.conn = c
	p.mu.Unlock()
}

// shutdown severs the active connection (if any) so the writer's
// blocking Write or redial wait cannot outlive Close.
func (p *peer) shutdown() {
	p.mu.Lock()
	p.closed = true
	if p.conn != nil {
		p.conn.Close()
	}
	p.mu.Unlock()
}

// TCP is the socket transport. Construct with New (which binds the
// listener so Addr is known immediately), install the delivery callback
// with Start, then Send freely from any goroutine.
type TCP struct {
	cfg     Config
	ln      net.Listener
	deliver atomic.Value // func(faultnet.Packet)
	local   map[int]bool

	mu     sync.Mutex
	peers  map[string]*peer  // keyed by address: procs sharing an address share a stream
	route  map[int]string    // proc id -> address
	conns  map[net.Conn]bool // inbound connections, severed on Close
	closed bool

	self *peer // loopback stream to our own listener, lazily created

	// instance is this transport's random boot identity, announced in a
	// preamble frame on every inbound connection; instances remembers the
	// last identity seen behind each dialed address (guarded by mu), and
	// restart fires when an address answers with a fresh one.
	instance  uint64
	instances map[string]uint64
	restart   atomic.Value // func(addr string, oldID, newID uint64)

	wg sync.WaitGroup

	stats struct {
		sent, delivered, dropped atomic.Int64
	}
}

// New builds the transport and binds its listener (when cfg.Listen is
// set). No traffic flows until Start installs the delivery callback,
// but inbound connections are accepted and parked from here on.
func New(cfg Config) (*TCP, error) {
	cfg = cfg.withDefaults()
	if cfg.Codec == nil {
		return nil, fmt.Errorf("transport: Config.Codec is required")
	}
	t := &TCP{
		cfg:       cfg,
		local:     make(map[int]bool, len(cfg.Local)),
		peers:     make(map[string]*peer),
		route:     make(map[int]string, len(cfg.Peers)),
		conns:     make(map[net.Conn]bool),
		instance:  randInstance(),
		instances: make(map[string]uint64),
	}
	for _, p := range cfg.Local {
		t.local[p] = true
	}
	for proc, addr := range cfg.Peers {
		t.route[proc] = addr
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// Addr returns the bound listener address ("" when send-only).
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Instance returns this transport's random boot identity. A fresh
// process at the same address has a fresh instance, which is what the
// restart handler keys on.
func (t *TCP) Instance() uint64 { return t.instance }

// SetRestartHandler installs a callback fired (on its own goroutine)
// when a dialed address answers with a different instance identity than
// it did before — i.e. the process behind that address restarted. The
// first connection to an address never fires it; nor does a plain
// reconnect to a surviving process. The handler must be safe to call
// concurrently. Only fixed-address restarts are observable this way: a
// process that restarts on a new ephemeral port is a new address, and
// detecting it is the caller's job (the shard tier uses boot nonces in
// its ping protocol for that).
func (t *TCP) SetRestartHandler(fn func(addr string, oldID, newID uint64)) {
	t.restart.Store(fn)
}

// randInstance draws a nonzero random identity; zero means "unknown".
func randInstance() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano()) | 1
	}
	return binary.BigEndian.Uint64(b[:]) | 1
}

// notePeerInstance records the identity an address announced and fires
// the restart handler when it changed.
func (t *TCP) notePeerInstance(addr string, inst uint64) {
	if inst == 0 {
		return
	}
	t.mu.Lock()
	old, seen := t.instances[addr]
	t.instances[addr] = inst
	t.mu.Unlock()
	if !seen || old == inst {
		return
	}
	if fn, _ := t.restart.Load().(func(string, uint64, uint64)); fn != nil {
		go fn(addr, old, inst)
	}
}

// SetPeer binds (or rebinds) a processor id to a transport address.
// Subsequent Sends to proc use the new route; an existing stream to the
// old address keeps serving procs still routed there.
func (t *TCP) SetPeer(proc int, addr string) {
	t.mu.Lock()
	t.route[proc] = addr
	t.mu.Unlock()
}

// Peer reports the currently routed address of proc ("" when unknown).
func (t *TCP) Peer(proc int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.route[proc]
}

// Start installs the delivery callback. Packets arriving before Start
// are dropped (the accept loop is already running so early dials are
// not refused, but there is no one to hand their frames to yet).
func (t *TCP) Start(deliver func(faultnet.Packet)) {
	t.deliver.Store(deliver)
}

// Send routes pkt toward its destination: inline delivery for local
// destinations (unless Loopback), otherwise onto the destination's
// stream queue. Never blocks; unroutable or overflowing packets are
// dropped and counted.
func (t *TCP) Send(pkt faultnet.Packet) {
	t.stats.sent.Add(1)
	if t.local[pkt.To] && !t.cfg.Loopback {
		t.handOff(pkt)
		return
	}

	body, err := t.cfg.Codec.Encode(pkt.Payload)
	if err != nil || headerLen+len(body) > MaxFrame {
		t.stats.dropped.Add(1)
		return
	}
	frame := appendFrame(make([]byte, 0, 4+headerLen+len(body)), pkt.From, pkt.To, body)

	p := t.peerFor(pkt.To)
	if p == nil {
		t.stats.dropped.Add(1)
		return
	}
	select {
	case p.queue <- frame:
	default:
		t.stats.dropped.Add(1) // queue full: lossy by contract
	}
}

// peerFor resolves the outbound stream for a destination, creating the
// writer lazily. Local destinations under Loopback go to a stream
// dialing our own listener.
func (t *TCP) peerFor(to int) *peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	var addr string
	if t.local[to] {
		if t.ln == nil {
			return nil
		}
		addr = t.ln.Addr().String()
	} else {
		addr = t.route[to]
		if addr == "" {
			return nil
		}
	}
	p := t.peers[addr]
	if p == nil {
		p = &peer{addr: addr, queue: make(chan []byte, t.cfg.QueueLen), done: make(chan struct{})}
		t.peers[addr] = p
		t.wg.Add(1)
		go t.writeLoop(p)
	}
	return p
}

// writeLoop owns one outbound connection: dial with backoff, drain the
// queue, reconnect on error. A frame that fails to write is dropped —
// it may be half on the wire, so resending it on the new stream could
// deliver a duplicate the caller never sent.
func (t *TCP) writeLoop(p *peer) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := t.cfg.DialBackoff
	for {
		var frame []byte
		select {
		case <-p.done:
			return
		case frame = <-p.queue:
		}
		for conn == nil {
			c, err := net.DialTimeout("tcp", p.addr, t.cfg.DialBackoffMax)
			if err == nil {
				conn = c
				p.setConn(c)
				backoff = t.cfg.DialBackoff
				t.readPreamble(c, p.addr)
				break
			}
			// Unreachable: drop this frame, sleep out the backoff while
			// shedding whatever else accumulates, then retry the dial.
			t.stats.dropped.Add(1)
			select {
			case <-p.done:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > t.cfg.DialBackoffMax {
				backoff = t.cfg.DialBackoffMax
			}
			select {
			case frame = <-p.queue:
			default:
				frame = nil
			}
			if frame == nil {
				break
			}
		}
		if conn == nil || frame == nil {
			continue
		}
		if _, err := conn.Write(frame); err != nil {
			conn.Close()
			conn = nil
			p.setConn(nil)
			t.stats.dropped.Add(1) // possibly torn mid-frame; caller retransmits
		}
	}
}

// acceptLoop hands each inbound connection to a reader.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = true
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// writePreamble announces this transport's instance identity down an
// inbound connection, so the dialer on the other end can tell a fresh
// process from a reconnect to the old one.
func (t *TCP) writePreamble(conn net.Conn) error {
	var body [8]byte
	binary.BigEndian.PutUint64(body[:], t.instance)
	frame := appendFrame(make([]byte, 0, 4+headerLen+8), instanceProc, instanceProc, body[:])
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_, err := conn.Write(frame)
	conn.SetWriteDeadline(time.Time{})
	return err
}

// readPreamble consumes the acceptor's identity announcement after a
// dial. Tolerant by design: a slow or foreign endpoint just leaves the
// identity unknown — the stream is unidirectional after the preamble,
// so nothing else can arrive here and be lost.
func (t *TCP) readPreamble(conn net.Conn, addr string) {
	conn.SetReadDeadline(time.Now().Add(t.cfg.DialBackoffMax))
	body, err := readFrame(conn, nil)
	conn.SetReadDeadline(time.Time{})
	if err != nil || len(body) < headerLen+8 {
		return
	}
	if from := int(int32(binary.BigEndian.Uint32(body))); from != instanceProc {
		return
	}
	t.notePeerInstance(addr, binary.BigEndian.Uint64(body[headerLen:]))
}

// readLoop decodes frames off one inbound stream and delivers the ones
// addressed to local processors.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	if t.writePreamble(conn) != nil {
		return
	}
	var buf []byte
	for {
		body, err := readFrame(conn, buf)
		if err != nil {
			return // EOF, reset, or a corrupt stream: drop the conn
		}
		buf = body[:0]
		pkt, err := decodeBody(body, t.cfg.Codec)
		if err != nil {
			return // undecodable payload: the stream cannot be trusted
		}
		t.handOff(pkt)
	}
}

// handOff delivers one packet to the installed callback if it is
// addressed to a local processor.
func (t *TCP) handOff(pkt faultnet.Packet) {
	if !t.local[pkt.To] {
		t.stats.dropped.Add(1)
		return
	}
	deliver, _ := t.deliver.Load().(func(faultnet.Packet))
	if deliver == nil {
		t.stats.dropped.Add(1)
		return
	}
	t.stats.delivered.Add(1)
	deliver(pkt)
}

// Alive is always true: a raw socket transport has no failure detector.
// Crash schedules come from layering an Injector (see Chaos); death
// detection from the protocols above.
func (t *TCP) Alive(int) bool { return true }

// StalledUntil never reports a stall for the same reason.
func (t *TCP) StalledUntil(int) (time.Time, bool) { return time.Time{}, false }

// Close stops the listener, the readers and every peer writer. Pending
// queued frames are discarded.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	peers := t.peers
	t.peers = map[string]*peer{}
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	if t.ln != nil {
		t.ln.Close()
	}
	for _, p := range peers {
		close(p.done)
		p.shutdown()
	}
	for _, c := range conns {
		c.Close() // unblock readers parked in ReadFull
	}
	t.wg.Wait()
}

// Stats reports the traffic counters. Dropped folds together every loss
// mode the transport has: no route, queue overflow, dial failure, write
// error, encode error, and delivery before Start.
func (t *TCP) Stats() faultnet.Stats {
	return faultnet.Stats{
		Sent:      t.stats.sent.Load(),
		Delivered: t.stats.delivered.Load(),
		Dropped:   t.stats.dropped.Load(),
	}
}
