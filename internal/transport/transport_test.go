package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gametree/internal/faultnet"
)

// collector gathers delivered packets with a broadcast for waiters.
type collector struct {
	mu   sync.Mutex
	pkts []faultnet.Packet
}

func (c *collector) deliver(pkt faultnet.Packet) {
	c.mu.Lock()
	c.pkts = append(c.pkts, pkt)
	c.mu.Unlock()
}

func (c *collector) snapshot() []faultnet.Packet {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]faultnet.Packet, len(c.pkts))
	copy(out, c.pkts)
	return out
}

// waitFor polls until cond sees the collected packets or the deadline
// passes.
func (c *collector) waitFor(t *testing.T, timeout time.Duration, cond func([]faultnet.Packet) bool) []faultnet.Packet {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		got := c.snapshot()
		if cond(got) {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for packets; have %d: %v", len(got), got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newTCP(t *testing.T, cfg Config) *TCP {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Codec == nil {
		cfg.Codec = Bytes{}
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

// TestTwoProcessExchange is the basic topology: two transports, each
// hosting one processor, exchanging byte payloads over real sockets.
func TestTwoProcessExchange(t *testing.T) {
	a := newTCP(t, Config{Local: []int{0}})
	b := newTCP(t, Config{Local: []int{1}, Peers: map[int]string{0: a.Addr()}})
	a.SetPeer(1, b.Addr())

	var ca, cb collector
	a.Start(ca.deliver)
	b.Start(cb.deliver)

	a.Send(faultnet.Packet{From: 0, To: 1, Payload: []byte("ping")})
	got := cb.waitFor(t, 5*time.Second, func(p []faultnet.Packet) bool { return len(p) == 1 })
	if string(got[0].Payload.([]byte)) != "ping" || got[0].From != 0 || got[0].To != 1 {
		t.Fatalf("b received %+v", got[0])
	}

	b.Send(faultnet.Packet{From: 1, To: 0, Payload: []byte("pong")})
	got = ca.waitFor(t, 5*time.Second, func(p []faultnet.Packet) bool { return len(p) == 1 })
	if string(got[0].Payload.([]byte)) != "pong" {
		t.Fatalf("a received %+v", got[0])
	}
}

// TestLoopbackOrdering sends a burst to a local processor with Loopback
// forced: every packet must cross the socket and arrive in send order
// (one stream per destination = per-link FIFO).
func TestLoopbackOrdering(t *testing.T) {
	tr := newTCP(t, Config{Local: []int{0, 1}, Loopback: true})
	var c collector
	tr.Start(c.deliver)

	const n = 500
	for i := 0; i < n; i++ {
		tr.Send(faultnet.Packet{From: 0, To: 1, Payload: []byte(fmt.Sprintf("m%04d", i))})
	}
	got := c.waitFor(t, 10*time.Second, func(p []faultnet.Packet) bool { return len(p) == n })
	for i, pkt := range got {
		if want := fmt.Sprintf("m%04d", i); string(pkt.Payload.([]byte)) != want {
			t.Fatalf("packet %d: got %q, want %q (reordered on one stream)", i, pkt.Payload, want)
		}
	}
	if s := tr.Stats(); s.Delivered != n {
		t.Fatalf("stats: %+v, want delivered=%d", s, n)
	}
}

// TestReconnectAfterPeerRestart kills the receiving transport,
// re-binds a fresh one on a new port, repoints the route, and requires
// delivery to resume — the writer must shed the dead-peer traffic and
// redial rather than wedge.
func TestReconnectAfterPeerRestart(t *testing.T) {
	a := newTCP(t, Config{Local: []int{0}, DialBackoff: 5 * time.Millisecond, DialBackoffMax: 50 * time.Millisecond})
	b1 := newTCP(t, Config{Local: []int{1}})
	a.SetPeer(1, b1.Addr())
	var c1 collector
	a.Start(func(faultnet.Packet) {})
	b1.Start(c1.deliver)

	a.Send(faultnet.Packet{From: 0, To: 1, Payload: []byte("before")})
	c1.waitFor(t, 5*time.Second, func(p []faultnet.Packet) bool { return len(p) == 1 })

	b1.Close()

	// Sends into the dead peer must not block; they drop or queue.
	for i := 0; i < 50; i++ {
		a.Send(faultnet.Packet{From: 0, To: 1, Payload: []byte("void")})
		time.Sleep(time.Millisecond)
	}

	b2 := newTCP(t, Config{Local: []int{1}})
	var c2 collector
	b2.Start(c2.deliver)
	a.SetPeer(1, b2.Addr())

	// The old route's writer keeps redialing the dead address; the new
	// route gets a fresh stream. Keep sending until one lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		a.Send(faultnet.Packet{From: 0, To: 1, Payload: []byte("after")})
		got := c2.snapshot()
		if len(got) > 0 {
			if string(got[0].Payload.([]byte)) != "after" {
				t.Fatalf("post-restart packet: %+v", got[0])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("delivery never resumed after peer restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRestartSignal: a dialed address that answers with a fresh
// instance identity — a new process on the old port — must fire the
// restart handler exactly once, with the old and new identities; the
// first connection to an address must not.
func TestRestartSignal(t *testing.T) {
	type restart struct {
		addr     string
		old, new uint64
	}
	restarts := make(chan restart, 4)

	a := newTCP(t, Config{Local: []int{0}, DialBackoff: 5 * time.Millisecond, DialBackoffMax: 200 * time.Millisecond})
	a.SetRestartHandler(func(addr string, oldID, newID uint64) {
		restarts <- restart{addr: addr, old: oldID, new: newID}
	})
	a.Start(func(faultnet.Packet) {})

	b1 := newTCP(t, Config{Local: []int{1}})
	addr := b1.Addr()
	a.SetPeer(1, addr)
	var c1 collector
	b1.Start(c1.deliver)

	a.Send(faultnet.Packet{From: 0, To: 1, Payload: []byte("hello")})
	c1.waitFor(t, 5*time.Second, func(p []faultnet.Packet) bool { return len(p) == 1 })
	select {
	case r := <-restarts:
		t.Fatalf("restart fired on first connection: %+v", r)
	default:
	}

	// Kill b1 and rebind a fresh transport on the very same port — the
	// fixed-address restart the shard portfile deployment produces.
	b1.Close()
	var b2 *TCP
	var err error
	for i := 0; i < 50; i++ {
		b2, err = New(Config{Listen: addr, Local: []int{1}, Codec: Bytes{}})
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond) // port briefly held by the old listener
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(b2.Close)
	var c2 collector
	b2.Start(c2.deliver)

	// Keep sending until the redial lands on the new process.
	deadline := time.Now().Add(10 * time.Second)
	for len(c2.snapshot()) == 0 {
		a.Send(faultnet.Packet{From: 0, To: 1, Payload: []byte("again")})
		if time.Now().After(deadline) {
			t.Fatal("delivery never resumed on the rebound address")
		}
		time.Sleep(5 * time.Millisecond)
	}

	select {
	case r := <-restarts:
		if r.addr != addr {
			t.Errorf("restart for %q, want %q", r.addr, addr)
		}
		if r.old != b1.Instance() || r.new != b2.Instance() {
			t.Errorf("restart identities (%x -> %x), want (%x -> %x)", r.old, r.new, b1.Instance(), b2.Instance())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("restart handler never fired for the fresh process")
	}
}

// TestUnroutableDrops pins the lossy contract: no route, no listener,
// no panic — just counted drops.
func TestUnroutableDrops(t *testing.T) {
	tr := newTCP(t, Config{Local: []int{0}})
	tr.Start(func(faultnet.Packet) {})
	for i := 0; i < 10; i++ {
		tr.Send(faultnet.Packet{From: 0, To: 99, Payload: []byte("x")})
	}
	if s := tr.Stats(); s.Dropped != 10 || s.Sent != 10 {
		t.Fatalf("stats: %+v, want sent=10 dropped=10", s)
	}
}

// TestChaosOverTCP smoke-tests the stack composition directly: a drop
// injector over a loopback transport must lose roughly the configured
// fraction and deliver the rest through real sockets.
func TestChaosOverTCP(t *testing.T) {
	lower := newTCP(t, Config{Local: []int{0, 1}, Loopback: true})
	inj := faultnet.NewInjector(faultnet.Config{Seed: 7, Drop: 0.5})
	net := Chaos(inj, lower)
	var c collector
	net.Start(c.deliver)
	defer net.Close()

	const n = 400
	for i := 0; i < n; i++ {
		net.Send(faultnet.Packet{From: 0, To: 1, Payload: []byte{byte(i)}})
	}
	// Half dropped by the injector (seeded, so the exact count is fixed
	// for seed 7); the rest must all surface through the socket.
	want := n - int(inj.Stats().Dropped)
	got := c.waitFor(t, 10*time.Second, func(p []faultnet.Packet) bool { return len(p) >= want })
	if len(got) != want {
		t.Fatalf("delivered %d, want %d (injector %v, transport %v)", len(got), want, inj.Stats(), lower.Stats())
	}
	if d := inj.Stats().Dropped; d < n/5 || d > 4*n/5 {
		t.Fatalf("drop injector dropped %d of %d — not plausibly 50%%", d, n)
	}
}
