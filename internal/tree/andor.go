package tree

// This file makes the equivalence of Section 2 explicit: "An AND/OR tree
// is equivalent to its NOR-tree representation up to complementation of
// the value of the root and possibly the values on the leaves."
//
// An AND/OR tree is represented here as a MinMax tree whose leaves are
// Boolean: OR nodes are the MAX levels (even depth, the root is an OR)
// and AND nodes the MIN levels. The transformation below replaces every
// internal node by NOR and complements each leaf at even depth; the NOR
// root then computes the complement of the AND/OR root. Formally, with
// g the AND/OR value and f the NOR value, the invariant is
//
//	f(v) = g(v) XOR [depth(v) is even]
//
// which holds at the leaves by construction and propagates upward:
// at odd depth (AND nodes) f(v) = NOR(not g(c)) = AND(g(c)) = g(v), and
// at even depth (OR nodes) f(v) = NOR(g(c)) = not OR(g(c)) = not g(v).

// AndOrToNOR converts a Boolean AND/OR tree (a MinMax tree with 0/1
// leaves, OR at the root) into its NOR-tree representation. The returned
// tree has the same shape; its root evaluates to the complement of the
// AND/OR root. It panics if t is not a Boolean MinMax tree.
func AndOrToNOR(t *Tree) *Tree {
	if t.Kind != MinMax {
		panic("tree: AndOrToNOR requires a MinMax (AND/OR) tree")
	}
	nodes := make([]Node, len(t.Nodes))
	copy(nodes, t.Nodes)
	for i := range nodes {
		nd := &nodes[i]
		if nd.NumChildren != 0 {
			continue
		}
		if nd.Value != 0 && nd.Value != 1 {
			panic("tree: AndOrToNOR requires Boolean leaves")
		}
		if nd.Depth%2 == 0 {
			nd.Value = 1 - nd.Value
		}
	}
	return &Tree{Kind: NOR, Nodes: nodes, Height: t.Height}
}

// NORToAndOr is the inverse of AndOrToNOR: it converts a NOR tree into
// the equivalent AND/OR tree (MinMax with Boolean leaves) whose root
// value is the complement of the NOR root.
func NORToAndOr(t *Tree) *Tree {
	if t.Kind != NOR {
		panic("tree: NORToAndOr requires a NOR tree")
	}
	nodes := make([]Node, len(t.Nodes))
	copy(nodes, t.Nodes)
	for i := range nodes {
		nd := &nodes[i]
		if nd.NumChildren != 0 {
			continue
		}
		if nd.Depth%2 == 0 {
			nd.Value = 1 - nd.Value
		}
	}
	return &Tree{Kind: MinMax, Nodes: nodes, Height: t.Height}
}

// IsBoolean reports whether every leaf value is 0 or 1.
func (t *Tree) IsBoolean() bool {
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.NumChildren == 0 && nd.Value != 0 && nd.Value != 1 {
			return false
		}
	}
	return true
}
