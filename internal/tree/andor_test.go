package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// shortCircuitAndOr is the classic left-to-right Boolean evaluation with
// short-circuiting (OR stops at the first 1, AND at the first 0),
// counting the leaves visited. It is the AND/OR-side reference for the
// equivalence with Sequential SOLVE on the NOR representation.
func shortCircuitAndOr(t *Tree, v NodeID) (int32, int64) {
	nd := t.Node(v)
	if nd.NumChildren == 0 {
		return nd.Value, 1
	}
	or := t.IsMaxNode(v)
	var visited int64
	for i := int32(0); i < nd.NumChildren; i++ {
		val, n := shortCircuitAndOr(t, nd.FirstChild+NodeID(i))
		visited += n
		if or && val == 1 {
			return 1, visited
		}
		if !or && val == 0 {
			return 0, visited
		}
	}
	if or {
		return 0, visited
	}
	return 1, visited
}

// norShortCircuit is left-to-right NOR evaluation (stop at the first 1),
// counting leaves.
func norShortCircuit(t *Tree, v NodeID) (int32, int64) {
	nd := t.Node(v)
	if nd.NumChildren == 0 {
		return nd.Value, 1
	}
	var visited int64
	for i := int32(0); i < nd.NumChildren; i++ {
		val, n := norShortCircuit(t, nd.FirstChild+NodeID(i))
		visited += n
		if val == 1 {
			return 0, visited
		}
	}
	return 1, visited
}

func randomAndOr(rng *rand.Rand) *Tree {
	d := 2 + rng.Intn(3)
	n := rng.Intn(6)
	return Uniform(MinMax, d, n, func(int) int32 { return int32(rng.Intn(2)) })
}

// The equivalence statement: the NOR representation evaluates to the
// complement of the AND/OR root.
func TestAndOrToNORComplementsRoot(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ao := randomAndOr(rng)
		nor := AndOrToNOR(ao)
		if err := nor.Validate(); err != nil {
			return false
		}
		return nor.Evaluate() == 1-ao.Evaluate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestNORToAndOrRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nor := IIDNor(2+rng.Intn(2), rng.Intn(6), 0.5, rng.Int63())
		ao := NORToAndOr(nor)
		if ao.Evaluate() != 1-nor.Evaluate() {
			return false
		}
		back := AndOrToNOR(ao)
		if back.Len() != nor.Len() {
			return false
		}
		for i := range back.Nodes {
			if back.Nodes[i].Value != nor.Nodes[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The deeper fact behind Section 2: the left-to-right short-circuit
// evaluation of the AND/OR tree visits exactly as many leaves as the
// left-to-right NOR evaluation of its representation — they are the same
// algorithm.
func TestShortCircuitLeafCountsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ao := randomAndOr(rng)
		nor := AndOrToNOR(ao)
		aoVal, aoLeaves := shortCircuitAndOr(ao, ao.Root())
		norVal, norLeaves := norShortCircuit(nor, nor.Root())
		return aoVal == 1-norVal && aoLeaves == norLeaves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestIsBoolean(t *testing.T) {
	if !IIDNor(2, 3, 0.5, 1).IsBoolean() {
		t.Error("NOR tree should be Boolean")
	}
	if IIDMinMax(2, 3, 5, 9, 1).IsBoolean() {
		t.Error("values 5..9 are not Boolean")
	}
}

func TestAndOrPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AndOrToNOR on NOR", func() { AndOrToNOR(IIDNor(2, 2, 0.5, 1)) })
	mustPanic("AndOrToNOR non-Boolean", func() { AndOrToNOR(IIDMinMax(2, 2, 3, 9, 1)) })
	mustPanic("NORToAndOr on MinMax", func() { NORToAndOr(IIDMinMax(2, 2, 0, 1, 1)) })
}

func TestBinarizeNORPreservesValue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(4)
		n := rng.Intn(5)
		tr := IIDNor(d, n, 0.4, rng.Int63())
		bin := BinarizeNOR(tr)
		if err := bin.Validate(); err != nil {
			return false
		}
		for i := range bin.Nodes {
			if nc := bin.Nodes[i].NumChildren; nc != 0 && nc != 2 {
				return false // must be strictly binary
			}
		}
		return bin.Evaluate() == tr.Evaluate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBinarizeFanOutOne(t *testing.T) {
	b := NewBuilder(NOR)
	c := b.AddChildren(b.Root(), 1)
	b.SetLeafValue(c, 1)
	tr := b.Build() // NOR(1) = 0
	bin := BinarizeNOR(tr)
	if bin.Evaluate() != 0 {
		t.Errorf("NOT(1) binarized to %d", bin.Evaluate())
	}
	if err := bin.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBinarizeSizeBound(t *testing.T) {
	tr := Uniform(NOR, 5, 3, ConstLeaves(0))
	bin := BinarizeNOR(tr)
	if bin.Len() > 4*tr.Len() {
		t.Errorf("binarized size %d exceeds 4x original %d", bin.Len(), tr.Len())
	}
}

func TestBinarizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BinarizeNOR(IIDMinMax(2, 2, 0, 1, 1))
}
