package tree

// BinarizeNOR rewrites a d-ary NOR tree as an equivalent strictly binary
// NOR tree computing the same root value, so that any uniform tree can be
// fed to the Section 7 message-passing machine (which the paper states
// for binary trees).
//
// The gadget uses constant 0-leaves: with NOT(x) = NOR(x, 0) and
// OR(a, b) = NOT(NOR(a, b)),
//
//	NOR(c1, ..., cd) = NOT(OR(...OR(OR(c1, c2), c3)..., cd))
//
// every internal node of fan-out d becomes a chain of d-1 binary NOR/NOT
// pairs plus a final NOT, multiplying the node count by at most ~3.
// Fan-out 2 nodes are kept as they are; fan-out 1 nodes become a double
// negation NOT(NOT(child)) to preserve both value and strict binarity.
func BinarizeNOR(t *Tree) *Tree {
	if t.Kind != NOR {
		panic("tree: BinarizeNOR requires a NOR tree")
	}
	b := NewBuilder(NOR)
	var build func(dst NodeID, src NodeID)

	// not builds NOT(sub) at dst, where sub is built by the continuation.
	not := func(dst NodeID, sub func(NodeID)) {
		first := b.AddChildren(dst, 2)
		sub(first)
		b.SetLeafValue(first+1, 0)
	}

	build = func(dst, src NodeID) {
		nd := t.Node(src)
		switch nd.NumChildren {
		case 0:
			b.SetLeafValue(dst, nd.Value)
		case 1:
			// NOR(x) = NOT(x) = NOR(x, 0).
			not(dst, func(inner NodeID) {
				build(inner, nd.FirstChild)
			})
		case 2:
			first := b.AddChildren(dst, 2)
			build(first, nd.FirstChild)
			build(first+1, nd.FirstChild+1)
		default:
			// NOR(c1..cd) = NOT(or_d) where or_i is the OR chain.
			// Build at dst: NOR(or_d, 0).
			not(dst, func(orTop NodeID) {
				// orTop must compute OR(c1..cd) = NOT(NOR(or_{d-1}, cd)).
				var orChain func(dst NodeID, k int32)
				orChain = func(dst NodeID, k int32) {
					// dst computes OR(c1..c_{k+1}).
					not(dst, func(norNode NodeID) {
						first := b.AddChildren(norNode, 2)
						if k == 1 {
							build(first, nd.FirstChild)
						} else {
							orChain(first, k-1)
						}
						build(first+1, nd.FirstChild+NodeID(k))
					})
				}
				orChain(orTop, nd.NumChildren-1)
			})
		}
	}
	build(b.Root(), t.Root())
	return b.Build()
}
