package tree

import (
	"bytes"
	"testing"
)

// FuzzParseSExpr: the parser must never panic, and anything it accepts
// must be a valid, evaluable tree that round-trips through DOT rendering.
func FuzzParseSExpr(f *testing.F) {
	for _, seed := range []string{
		"((3 5) (2 9))", "42", "(1 2 3)", "((1) 2)", "(", ")", "", "(x)",
		"((((0))))", "(1 (2 (3 (4))))", "(-5 7)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<12 {
			return // deep recursion guard for pathological inputs
		}
		tr, err := ParseSExpr(MinMax, s)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid tree for %q: %v", s, err)
		}
		_ = tr.Evaluate()
		var buf bytes.Buffer
		if err := tr.WriteDOT(&buf, "f"); err != nil {
			t.Fatalf("DOT render failed: %v", err)
		}
	})
}

// FuzzDecode: arbitrary bytes must never panic the decoder, and any tree
// it accepts must validate.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := IIDNor(2, 3, 0.5, 1).Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Decode returned invalid tree: %v", err)
		}
	})
}
