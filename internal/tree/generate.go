package tree

import (
	"fmt"
	"math/rand"
)

// UniformSize returns the number of nodes of a uniform d-ary tree of height
// n, i.e. (d^(n+1)-1)/(d-1). It panics if the size would overflow an int32
// arena index.
func UniformSize(d, n int) int {
	size := 1
	level := 1
	for i := 0; i < n; i++ {
		level *= d
		size += level
		if size > 1<<31-1 {
			panic(fmt.Sprintf("tree: uniform tree B(%d,%d) too large for arena", d, n))
		}
	}
	return size
}

// LeafAssigner assigns a value to the i-th leaf (in left-to-right order) of
// a generated tree. Generators call it once per leaf, in order.
type LeafAssigner func(i int) int32

// Uniform builds the uniform d-ary tree of height n of the given kind,
// assigning leaf values with assign. For kind NOR this produces a member of
// B(d,n); for kind MinMax a member of M(d,n).
func Uniform(kind Kind, d, n int, assign LeafAssigner) *Tree {
	if d < 1 || n < 0 {
		panic("tree: Uniform requires d >= 1 and n >= 0")
	}
	size := UniformSize(d, n)
	nodes := make([]Node, 0, size)
	nodes = append(nodes, Node{Parent: None, FirstChild: None})
	// Build level by level; children of consecutive parents are
	// consecutive blocks, preserving left-to-right order.
	levelStart, levelLen := 0, 1
	for depth := 0; depth < n; depth++ {
		nextStart := len(nodes)
		for p := levelStart; p < levelStart+levelLen; p++ {
			first := NodeID(len(nodes))
			for c := 0; c < d; c++ {
				nodes = append(nodes, Node{
					Parent:     NodeID(p),
					FirstChild: None,
					Depth:      int32(depth + 1),
					ChildIndex: int32(c),
				})
			}
			nodes[p].FirstChild = first
			nodes[p].NumChildren = int32(d)
		}
		levelStart, levelLen = nextStart, levelLen*d
	}
	if assign != nil {
		for i := 0; i < levelLen; i++ {
			nodes[levelStart+i].Value = assign(i)
		}
	}
	return &Tree{Kind: kind, Nodes: nodes, Height: n}
}

// ConstLeaves returns an assigner that gives every leaf the same value.
func ConstLeaves(v int32) LeafAssigner { return func(int) int32 { return v } }

// SliceLeaves returns an assigner reading values from vals.
func SliceLeaves(vals []int32) LeafAssigner {
	return func(i int) int32 { return vals[i] }
}

// BernoulliLeaves returns an assigner drawing i.i.d. Bernoulli(p) leaf
// values (1 with probability p) from a deterministic stream seeded by seed.
// This is the i.i.d. model of Section 6 of the paper.
func BernoulliLeaves(p float64, seed int64) LeafAssigner {
	rng := rand.New(rand.NewSource(seed))
	return func(int) int32 {
		if rng.Float64() < p {
			return 1
		}
		return 0
	}
}

// UniformValueLeaves returns an assigner drawing i.i.d. integer leaf values
// uniformly from [lo, hi] for MIN/MAX trees.
func UniformValueLeaves(lo, hi int32, seed int64) LeafAssigner {
	rng := rand.New(rand.NewSource(seed))
	span := int64(hi) - int64(lo) + 1
	return func(int) int32 { return lo + int32(rng.Int63n(span)) }
}

// WorstCaseNOR builds the member of B(d,n) on which Sequential SOLVE must
// evaluate every leaf: a 1-valued node has all-0 children (all scanned);
// a 0-valued node has its single 1-child in the last position, so the
// left-to-right scan sees d-1 full 0-subtrees before the terminating 1.
// rootValue selects the value of the root (0 or 1).
func WorstCaseNOR(d, n int, rootValue int32) *Tree {
	t := Uniform(NOR, d, n, nil)
	assignWorstNOR(t, 0, rootValue)
	return t
}

func assignWorstNOR(t *Tree, v NodeID, target int32) {
	nd := &t.Nodes[v]
	if nd.NumChildren == 0 {
		nd.Value = target
		return
	}
	d := int(nd.NumChildren)
	if target == 1 {
		for i := 0; i < d; i++ {
			assignWorstNOR(t, nd.FirstChild+NodeID(i), 0)
		}
		return
	}
	for i := 0; i < d-1; i++ {
		assignWorstNOR(t, nd.FirstChild+NodeID(i), 0)
	}
	assignWorstNOR(t, nd.FirstChild+NodeID(d-1), 1)
}

// BestCaseNOR builds the member of B(d,n) on which Sequential SOLVE prunes
// maximally: a 0-valued node has its 1-child first, so the scan stops after
// a single subtree.
func BestCaseNOR(d, n int, rootValue int32) *Tree {
	t := Uniform(NOR, d, n, nil)
	assignBestNOR(t, 0, rootValue)
	return t
}

func assignBestNOR(t *Tree, v NodeID, target int32) {
	nd := &t.Nodes[v]
	if nd.NumChildren == 0 {
		nd.Value = target
		return
	}
	d := int(nd.NumChildren)
	if target == 1 {
		for i := 0; i < d; i++ {
			assignBestNOR(t, nd.FirstChild+NodeID(i), 0)
		}
		return
	}
	assignBestNOR(t, nd.FirstChild, 1)
	for i := 1; i < d; i++ {
		// Values under pruned siblings are irrelevant to the
		// algorithms; make them 0 so the tree remains a valid worst
		// case for nothing and keeps val(v)=0 unambiguous.
		assignBestNOR(t, nd.FirstChild+NodeID(i), 0)
	}
}

// IIDNor builds a member of B(d,n) with i.i.d. Bernoulli(p) leaves.
func IIDNor(d, n int, p float64, seed int64) *Tree {
	return Uniform(NOR, d, n, BernoulliLeaves(p, seed))
}

// IIDMinMax builds a member of M(d,n) with i.i.d. uniform leaf values on
// [lo, hi].
func IIDMinMax(d, n int, lo, hi int32, seed int64) *Tree {
	return Uniform(MinMax, d, n, UniformValueLeaves(lo, hi, seed))
}

// OrderChildren rewrites the tree so that at every internal node the
// children appear sorted by their exact game value: bestFirst orders each
// MAX node's children by descending value and each MIN node's children by
// ascending value (the Knuth–Moore "perfect ordering", the best case for
// alpha-beta); !bestFirst produces the pessimal ordering. The tree must be
// MinMax. A new tree is returned; the input is unchanged.
func OrderChildren(t *Tree, bestFirst bool) *Tree {
	if t.Kind != MinMax {
		panic("tree: OrderChildren requires a MinMax tree")
	}
	vals := t.EvaluateAll()
	b := NewBuilder(MinMax)
	var cp func(src NodeID, dst NodeID)
	cp = func(src, dst NodeID) {
		nd := &t.Nodes[src]
		if nd.NumChildren == 0 {
			b.SetLeafValue(dst, nd.Value)
			return
		}
		kids := t.Children(src)
		// Stable insertion sort by value; d is small.
		better := func(a, c NodeID) bool {
			if t.IsMaxNode(src) == bestFirst {
				return vals[a] > vals[c]
			}
			return vals[a] < vals[c]
		}
		for i := 1; i < len(kids); i++ {
			for j := i; j > 0 && better(kids[j], kids[j-1]); j-- {
				kids[j], kids[j-1] = kids[j-1], kids[j]
			}
		}
		first := b.AddChildren(dst, len(kids))
		for i, k := range kids {
			cp(k, first+NodeID(i))
		}
	}
	cp(0, b.Root())
	return b.Build()
}

// BestOrderedMinMax builds a member of M(d,n) with distinct i.i.d. leaf
// values rearranged into the perfect (best-first) ordering, the instance
// family on which sequential alpha-beta attains the Knuth–Moore optimum of
// d^ceil(n/2) + d^floor(n/2) - 1 leaf evaluations.
func BestOrderedMinMax(d, n int, seed int64) *Tree {
	// Distinct values: a random permutation of 0..numLeaves-1.
	nl := 1
	for i := 0; i < n; i++ {
		nl *= d
	}
	perm := rand.New(rand.NewSource(seed)).Perm(nl)
	t := Uniform(MinMax, d, n, func(i int) int32 { return int32(perm[i]) })
	return OrderChildren(t, true)
}

// WorstOrderedMinMax is the pessimal-ordering counterpart of
// BestOrderedMinMax.
func WorstOrderedMinMax(d, n int, seed int64) *Tree {
	nl := 1
	for i := 0; i < n; i++ {
		nl *= d
	}
	perm := rand.New(rand.NewSource(seed)).Perm(nl)
	t := Uniform(MinMax, d, n, func(i int) int32 { return int32(perm[i]) })
	return OrderChildren(t, false)
}

// NearUniform builds a tree satisfying the hypotheses of Corollary 2: every
// internal node has between ceil(alpha*d) and d children and every
// root-leaf path has length between ceil(beta*n) and n. Leaf values are
// assigned by assign in left-to-right order.
func NearUniform(kind Kind, d, n int, alpha, beta float64, seed int64, assign LeafAssigner) *Tree {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		panic("tree: NearUniform requires alpha, beta in (0,1]")
	}
	rng := rand.New(rand.NewSource(seed))
	minD := int(float64(d)*alpha + 0.999999)
	if minD < 1 {
		minD = 1
	}
	minDepth := int(float64(n)*beta + 0.999999)
	b := NewBuilder(kind)
	leafIdx := 0
	var grow func(v NodeID, depth int)
	grow = func(v NodeID, depth int) {
		isLeaf := depth == n || (depth >= minDepth && rng.Float64() < 0.3)
		if isLeaf {
			if assign != nil {
				b.SetLeafValue(v, assign(leafIdx))
			}
			leafIdx++
			return
		}
		nc := minD + rng.Intn(d-minD+1)
		first := b.AddChildren(v, nc)
		for i := 0; i < nc; i++ {
			grow(first+NodeID(i), depth+1)
		}
	}
	grow(b.Root(), 0)
	return b.Build()
}

// Permute returns a copy of t in which the children of every internal node
// have been independently and uniformly permuted, as in the conceptual view
// of the randomized algorithms of Section 6 ("Sequential SOLVE acting on a
// randomly permuted input tree").
func Permute(t *Tree, seed int64) *Tree {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(t.Kind)
	var cp func(src, dst NodeID)
	cp = func(src, dst NodeID) {
		nd := &t.Nodes[src]
		if nd.NumChildren == 0 {
			b.SetLeafValue(dst, nd.Value)
			return
		}
		kids := t.Children(src)
		rng.Shuffle(len(kids), func(i, j int) { kids[i], kids[j] = kids[j], kids[i] })
		first := b.AddChildren(dst, len(kids))
		for i, k := range kids {
			cp(k, first+NodeID(i))
		}
	}
	cp(0, b.Root())
	return b.Build()
}

// FromNested builds a tree from a nested literal: an int (or int32) is a
// leaf value; a []any is an internal node whose elements are its children.
// Handy for unit tests:
//
//	FromNested(MinMax, []any{[]any{3, 5}, []any{2, 9}})
func FromNested(kind Kind, spec any) *Tree {
	b := NewBuilder(kind)
	var build func(v NodeID, s any)
	build = func(v NodeID, s any) {
		switch x := s.(type) {
		case int:
			b.SetLeafValue(v, int32(x))
		case int32:
			b.SetLeafValue(v, x)
		case []any:
			if len(x) == 0 {
				panic("tree: FromNested internal node with no children")
			}
			first := b.AddChildren(v, len(x))
			for i, c := range x {
				build(first+NodeID(i), c)
			}
		default:
			panic(fmt.Sprintf("tree: FromNested unsupported element %T", s))
		}
	}
	build(b.Root(), spec)
	return b.Build()
}
