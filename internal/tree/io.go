package tree

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Encode writes the tree in a self-describing binary format (encoding/gob).
func (t *Tree) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t)
}

// Decode reads a tree previously written by Encode and validates it.
func Decode(r io.Reader) (*Tree, error) {
	var t Tree
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("tree: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// WriteDOT emits the tree in Graphviz DOT format. Leaves are boxes labeled
// with their value; internal nodes are circles labeled NOR, MAX or MIN.
func (t *Tree) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  ordering=out;\n", name)
	for id := range t.Nodes {
		nd := &t.Nodes[id]
		if nd.NumChildren == 0 {
			fmt.Fprintf(bw, "  n%d [shape=box,label=\"%d\"];\n", id, nd.Value)
			continue
		}
		label := "NOR"
		if t.Kind == MinMax {
			if nd.Depth%2 == 0 {
				label = "MAX"
			} else {
				label = "MIN"
			}
		}
		fmt.Fprintf(bw, "  n%d [label=%q];\n", id, label)
		for i := int32(0); i < nd.NumChildren; i++ {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", id, nd.FirstChild+NodeID(i))
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// ParseSExpr parses a tree from an s-expression: "(...)" is an internal
// node, an integer token is a leaf. Example: "((3 5) (2 9))" is a height-2
// binary tree. Whitespace separates tokens.
func ParseSExpr(kind Kind, s string) (*Tree, error) {
	toks := tokenize(s)
	if len(toks) == 0 {
		return nil, fmt.Errorf("tree: empty expression")
	}
	spec, rest, err := parseTokens(toks)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("tree: trailing tokens %v", rest)
	}
	t := FromNested(kind, spec)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func tokenize(s string) []string {
	s = strings.ReplaceAll(s, "(", " ( ")
	s = strings.ReplaceAll(s, ")", " ) ")
	return strings.Fields(s)
}

func parseTokens(toks []string) (any, []string, error) {
	if len(toks) == 0 {
		return nil, nil, fmt.Errorf("tree: unexpected end of expression")
	}
	switch toks[0] {
	case "(":
		var kids []any
		rest := toks[1:]
		for {
			if len(rest) == 0 {
				return nil, nil, fmt.Errorf("tree: missing ')'")
			}
			if rest[0] == ")" {
				if len(kids) == 0 {
					return nil, nil, fmt.Errorf("tree: internal node with no children")
				}
				return kids, rest[1:], nil
			}
			kid, r, err := parseTokens(rest)
			if err != nil {
				return nil, nil, err
			}
			kids = append(kids, kid)
			rest = r
		}
	case ")":
		return nil, nil, fmt.Errorf("tree: unexpected ')'")
	default:
		v, err := strconv.ParseInt(toks[0], 10, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("tree: bad leaf token %q: %w", toks[0], err)
		}
		return int32(v), toks[1:], nil
	}
}
