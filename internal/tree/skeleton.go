package tree

// This file implements the combinatorial objects from Sections 2 and 3 of
// the paper: proof trees (the certificates behind Fact 1/Fact 2 lower
// bounds) and skeletons H_T (the subtree of T spanned by the leaves the
// sequential algorithm evaluates, central to the proof of Theorem 1).

// ProofTreeSize returns the number of leaves in a smallest proof tree of a
// NOR tree T, i.e. the minimum number of leaf evaluations that certify
// val(T). For a uniform tree in B(d,n) this is d^floor(n/2) or
// d^ceil(n/2) depending on the root value; this function computes it
// exactly for arbitrary NOR trees by the recurrence:
//
//	value-1 node: all children must be certified 0  -> sum of child costs
//	value-0 node: one 1-child suffices              -> min over 1-children
func ProofTreeSize(t *Tree) int64 {
	if t.Kind != NOR {
		panic("tree: ProofTreeSize requires a NOR tree")
	}
	vals := t.EvaluateAll()
	cost := make([]int64, len(t.Nodes))
	for id := len(t.Nodes) - 1; id >= 0; id-- {
		nd := &t.Nodes[id]
		if nd.NumChildren == 0 {
			cost[id] = 1
			continue
		}
		if vals[id] == 1 {
			var s int64
			for i := int32(0); i < nd.NumChildren; i++ {
				s += cost[nd.FirstChild+NodeID(i)]
			}
			cost[id] = s
		} else {
			best := int64(-1)
			for i := int32(0); i < nd.NumChildren; i++ {
				c := nd.FirstChild + NodeID(i)
				if vals[c] == 1 && (best < 0 || cost[c] < best) {
					best = cost[c]
				}
			}
			cost[id] = best
		}
	}
	return cost[0]
}

// ProofTree extracts one smallest proof tree as a set of leaf ids (the
// leaves whose evaluation certifies the root value).
func ProofTree(t *Tree) []NodeID {
	if t.Kind != NOR {
		panic("tree: ProofTree requires a NOR tree")
	}
	vals := t.EvaluateAll()
	cost := make([]int64, len(t.Nodes))
	pick := make([]NodeID, len(t.Nodes)) // chosen child for value-0 nodes
	for id := len(t.Nodes) - 1; id >= 0; id-- {
		nd := &t.Nodes[id]
		if nd.NumChildren == 0 {
			cost[id] = 1
			continue
		}
		if vals[id] == 1 {
			var s int64
			for i := int32(0); i < nd.NumChildren; i++ {
				s += cost[nd.FirstChild+NodeID(i)]
			}
			cost[id] = s
		} else {
			best := int64(-1)
			for i := int32(0); i < nd.NumChildren; i++ {
				c := nd.FirstChild + NodeID(i)
				if vals[c] == 1 && (best < 0 || cost[c] < best) {
					best = cost[c]
					pick[id] = c
				}
			}
			cost[id] = best
		}
	}
	var leaves []NodeID
	var collect func(v NodeID)
	collect = func(v NodeID) {
		nd := &t.Nodes[v]
		if nd.NumChildren == 0 {
			leaves = append(leaves, v)
			return
		}
		if vals[v] == 1 {
			for i := int32(0); i < nd.NumChildren; i++ {
				collect(nd.FirstChild + NodeID(i))
			}
		} else {
			collect(pick[v])
		}
	}
	collect(0)
	return leaves
}

// Skeleton builds H_T from a set of evaluated leaves: the tree obtained
// from t by deleting every node that is not an ancestor of a leaf in the
// set (Section 3). It returns the new tree together with a mapping from
// new node ids to original ids. Nodes keep their original left-to-right
// order; note that (per the paper) a surviving node has the same set of
// left-siblings in H_T as it does in T only in the sense relevant to the
// proofs — siblings *not* in the skeleton are gone, which is exactly the
// construction the paper uses.
func Skeleton(t *Tree, evaluated []NodeID) (*Tree, []NodeID) {
	keep := make([]bool, len(t.Nodes))
	for _, l := range evaluated {
		for v := l; v != None; v = t.Nodes[v].Parent {
			if keep[v] {
				break
			}
			keep[v] = true
		}
	}
	if !keep[0] {
		panic("tree: Skeleton with no evaluated leaves")
	}
	b := NewBuilder(t.Kind)
	mapping := []NodeID{0}
	var cp func(src, dst NodeID)
	cp = func(src, dst NodeID) {
		nd := &t.Nodes[src]
		var kids []NodeID
		for i := int32(0); i < nd.NumChildren; i++ {
			c := nd.FirstChild + NodeID(i)
			if keep[c] {
				kids = append(kids, c)
			}
		}
		if len(kids) == 0 {
			b.SetLeafValue(dst, nd.Value)
			return
		}
		first := b.AddChildren(dst, len(kids))
		for i, k := range kids {
			for NodeID(len(mapping)) <= first+NodeID(i) {
				mapping = append(mapping, None)
			}
			mapping[first+NodeID(i)] = k
			cp(k, first+NodeID(i))
		}
	}
	cp(0, b.Root())
	return b.Build(), mapping
}

// Stats summarizes a tree's shape.
type Stats struct {
	Nodes        int
	Leaves       int
	Internal     int
	Height       int
	MinLeafDepth int
	MaxDegree    int
	MinDegree    int // over internal nodes
	RootValue    int32
}

// Summarize computes Stats, including the exact root value.
func Summarize(t *Tree) Stats {
	s := Stats{Nodes: len(t.Nodes), Height: t.Height, MinDegree: 1 << 30, MinLeafDepth: 1 << 30}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.NumChildren == 0 {
			s.Leaves++
			if int(nd.Depth) < s.MinLeafDepth {
				s.MinLeafDepth = int(nd.Depth)
			}
		} else {
			s.Internal++
			if int(nd.NumChildren) > s.MaxDegree {
				s.MaxDegree = int(nd.NumChildren)
			}
			if int(nd.NumChildren) < s.MinDegree {
				s.MinDegree = int(nd.NumChildren)
			}
		}
	}
	if s.Internal == 0 {
		s.MinDegree = 0
	}
	s.RootValue = t.Evaluate()
	return s
}
