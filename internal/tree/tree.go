// Package tree provides the game-tree representation used throughout the
// repository: a flat arena of nodes with contiguous child blocks, supporting
// both Boolean AND/OR trees in their NOR normal form and real-valued
// MIN/MAX trees, exactly as defined in Section 1 of Karp & Zhang,
// "On Parallel Evaluation of Game Trees" (SPAA 1989).
//
// The package also contains instance generators (worst case, best case,
// i.i.d. leaves, near-uniform trees of Corollary 2), reference evaluation,
// proof trees (Fact 1) and skeletons H_T (Section 3).
package tree

import (
	"errors"
	"fmt"
)

// Kind distinguishes the two families of game trees in the paper.
type Kind uint8

const (
	// NOR marks a Boolean tree in NOR normal form: the value of an
	// internal node is 1 iff all children have value 0. An AND/OR tree is
	// equivalent to its NOR representation up to complementation
	// (Section 2 of the paper).
	NOR Kind = iota
	// MinMax marks a real-valued game tree whose root is a MAX node and
	// whose levels alternate MAX/MIN.
	MinMax
)

func (k Kind) String() string {
	switch k {
	case NOR:
		return "NOR"
	case MinMax:
		return "MinMax"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NodeID indexes a node inside a Tree's arena. The root is always node 0.
type NodeID int32

// None is the null NodeID, used for "no parent" and similar sentinels.
const None NodeID = -1

// Node is one tree node. Children of a node are stored contiguously in the
// arena, so a Node only records the first child and the child count.
type Node struct {
	Parent      NodeID // None for the root
	FirstChild  NodeID // undefined when NumChildren == 0
	NumChildren int32
	Depth       int32 // distance from the root
	ChildIndex  int32 // position among the parent's children (0-based)
	Value       int32 // leaf value; for NOR trees 0 or 1; unused on internal nodes
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.NumChildren == 0 }

// Tree is a finite rooted ordered game tree stored in a flat arena.
// The zero value is not usable; construct trees with a Builder or one of
// the generators.
type Tree struct {
	Kind   Kind
	Nodes  []Node
	Height int // length (in edges) of the longest root-leaf path
}

// Root returns the root node id (always 0 for a non-empty tree).
func (t *Tree) Root() NodeID { return 0 }

// Len returns the total number of nodes.
func (t *Tree) Len() int { return len(t.Nodes) }

// Node returns a pointer to the node with the given id.
func (t *Tree) Node(id NodeID) *Node { return &t.Nodes[id] }

// Child returns the id of the i-th child of v.
func (t *Tree) Child(v NodeID, i int) NodeID {
	return t.Nodes[v].FirstChild + NodeID(i)
}

// Children returns the ids of all children of v in order. The returned
// slice is freshly allocated; hot paths should iterate with Child instead.
func (t *Tree) Children(v NodeID) []NodeID {
	n := &t.Nodes[v]
	kids := make([]NodeID, n.NumChildren)
	for i := range kids {
		kids[i] = n.FirstChild + NodeID(i)
	}
	return kids
}

// IsLeaf reports whether v is a leaf.
func (t *Tree) IsLeaf(v NodeID) bool { return t.Nodes[v].NumChildren == 0 }

// LeafValue returns the value stored on leaf v.
func (t *Tree) LeafValue(v NodeID) int32 { return t.Nodes[v].Value }

// Depth returns the distance of v from the root.
func (t *Tree) Depth(v NodeID) int { return int(t.Nodes[v].Depth) }

// IsMaxNode reports whether v is a MAX node in a MIN/MAX tree (the root is
// MAX; parity alternates). For NOR trees the notion is not used.
func (t *Tree) IsMaxNode(v NodeID) bool { return t.Nodes[v].Depth%2 == 0 }

// NumLeaves counts the leaves of the tree.
func (t *Tree) NumLeaves() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].NumChildren == 0 {
			n++
		}
	}
	return n
}

// Leaves returns the ids of all leaves in left-to-right order.
func (t *Tree) Leaves() []NodeID {
	var out []NodeID
	var walk func(v NodeID)
	walk = func(v NodeID) {
		nd := &t.Nodes[v]
		if nd.NumChildren == 0 {
			out = append(out, v)
			return
		}
		for i := int32(0); i < nd.NumChildren; i++ {
			walk(nd.FirstChild + NodeID(i))
		}
	}
	if len(t.Nodes) > 0 {
		walk(0)
	}
	return out
}

// Validate checks structural invariants of the arena: parent/child links
// consistent, depths correct, child indices correct, height correct.
// Generators and the Builder always produce valid trees; Validate exists for
// tests and for trees decoded from external data.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return errors.New("tree: empty")
	}
	if t.Nodes[0].Parent != None {
		return errors.New("tree: root has a parent")
	}
	if t.Nodes[0].Depth != 0 {
		return errors.New("tree: root depth != 0")
	}
	maxDepth := 0
	for id := range t.Nodes {
		nd := &t.Nodes[id]
		if int(nd.Depth) > maxDepth {
			maxDepth = int(nd.Depth)
		}
		if nd.NumChildren < 0 {
			return fmt.Errorf("tree: node %d has negative child count", id)
		}
		for i := int32(0); i < nd.NumChildren; i++ {
			c := nd.FirstChild + NodeID(i)
			if c <= NodeID(id) || int(c) >= len(t.Nodes) {
				return fmt.Errorf("tree: node %d child %d out of range", id, c)
			}
			ch := &t.Nodes[c]
			if ch.Parent != NodeID(id) {
				return fmt.Errorf("tree: node %d parent link broken (child %d)", id, c)
			}
			if ch.Depth != nd.Depth+1 {
				return fmt.Errorf("tree: node %d depth inconsistent", c)
			}
			if ch.ChildIndex != i {
				return fmt.Errorf("tree: node %d child index inconsistent", c)
			}
		}
		if nd.NumChildren == 0 && t.Kind == NOR && nd.Value != 0 && nd.Value != 1 {
			return fmt.Errorf("tree: NOR leaf %d has non-Boolean value %d", id, nd.Value)
		}
	}
	if maxDepth != t.Height {
		return fmt.Errorf("tree: recorded height %d != actual %d", t.Height, maxDepth)
	}
	return nil
}

// Evaluate computes the value of every node bottom-up by the defining
// recurrences (NOR, or MIN/MAX with a MAX root) and returns the value of
// the root. It is the reference oracle every search algorithm in this
// repository is checked against.
func (t *Tree) Evaluate() int32 {
	vals := t.EvaluateAll()
	return vals[0]
}

// EvaluateAll returns a slice indexed by NodeID holding the exact value of
// every node.
func (t *Tree) EvaluateAll() []int32 {
	vals := make([]int32, len(t.Nodes))
	// The arena is laid out so children always follow their parent
	// (Validate enforces c > parent), so a reverse scan is a valid
	// bottom-up order.
	for id := len(t.Nodes) - 1; id >= 0; id-- {
		nd := &t.Nodes[id]
		if nd.NumChildren == 0 {
			vals[id] = nd.Value
			continue
		}
		switch t.Kind {
		case NOR:
			v := int32(1)
			for i := int32(0); i < nd.NumChildren; i++ {
				if vals[nd.FirstChild+NodeID(i)] == 1 {
					v = 0
					break
				}
			}
			vals[id] = v
		case MinMax:
			first := vals[nd.FirstChild]
			best := first
			if nd.Depth%2 == 0 { // MAX node
				for i := int32(1); i < nd.NumChildren; i++ {
					if v := vals[nd.FirstChild+NodeID(i)]; v > best {
						best = v
					}
				}
			} else { // MIN node
				for i := int32(1); i < nd.NumChildren; i++ {
					if v := vals[nd.FirstChild+NodeID(i)]; v < best {
						best = v
					}
				}
			}
			vals[id] = best
		}
	}
	return vals
}

// PathToRoot returns the node ids from v up to the root, inclusive,
// starting at v.
func (t *Tree) PathToRoot(v NodeID) []NodeID {
	var p []NodeID
	for v != None {
		p = append(p, v)
		v = t.Nodes[v].Parent
	}
	return p
}

// IsAncestor reports whether a is an ancestor of v. Per the paper's
// convention, every node is an ancestor of itself.
func (t *Tree) IsAncestor(a, v NodeID) bool {
	for v != None {
		if v == a {
			return true
		}
		v = t.Nodes[v].Parent
	}
	return false
}

// String returns a short description, e.g. "NOR tree: 31 nodes, height 4".
func (t *Tree) String() string {
	return fmt.Sprintf("%s tree: %d nodes, height %d", t.Kind, len(t.Nodes), t.Height)
}

// Builder constructs trees top-down. Children of a node must be added in a
// single AddChildren call so that they are contiguous in the arena.
type Builder struct {
	kind  Kind
	nodes []Node
}

// NewBuilder starts a tree of the given kind with just a root.
func NewBuilder(kind Kind) *Builder {
	return &Builder{
		kind:  kind,
		nodes: []Node{{Parent: None, FirstChild: None}},
	}
}

// Root returns the id of the root node.
func (b *Builder) Root() NodeID { return 0 }

// AddChildren appends n children under parent and returns the id of the
// first one (the rest follow consecutively). It panics if parent already
// has children, to preserve contiguity.
func (b *Builder) AddChildren(parent NodeID, n int) NodeID {
	p := &b.nodes[parent]
	if p.NumChildren != 0 {
		panic("tree: AddChildren called twice for the same parent")
	}
	if n <= 0 {
		panic("tree: AddChildren needs n > 0")
	}
	first := NodeID(len(b.nodes))
	for i := 0; i < n; i++ {
		b.nodes = append(b.nodes, Node{
			Parent:     parent,
			FirstChild: None,
			Depth:      b.nodes[parent].Depth + 1,
			ChildIndex: int32(i),
		})
	}
	b.nodes[parent].FirstChild = first
	b.nodes[parent].NumChildren = int32(n)
	return first
}

// SetLeafValue assigns the value of a leaf.
func (b *Builder) SetLeafValue(v NodeID, val int32) {
	b.nodes[v].Value = val
}

// Build finalizes the tree. The Builder must not be used afterwards.
func (b *Builder) Build() *Tree {
	h := int32(0)
	for i := range b.nodes {
		if b.nodes[i].Depth > h {
			h = b.nodes[i].Depth
		}
	}
	t := &Tree{Kind: b.kind, Nodes: b.nodes, Height: int(h)}
	b.nodes = nil
	return t
}

// Equal reports whether two trees are structurally identical with equal
// leaf values and the same kind.
func Equal(a, b *Tree) bool {
	if a.Kind != b.Kind || a.Height != b.Height || len(a.Nodes) != len(b.Nodes) {
		return false
	}
	var eq func(x, y NodeID) bool
	eq = func(x, y NodeID) bool {
		nx, ny := a.Node(x), b.Node(y)
		if nx.NumChildren != ny.NumChildren {
			return false
		}
		if nx.NumChildren == 0 {
			return nx.Value == ny.Value
		}
		for i := int32(0); i < nx.NumChildren; i++ {
			if !eq(nx.FirstChild+NodeID(i), ny.FirstChild+NodeID(i)) {
				return false
			}
		}
		return true
	}
	return eq(a.Root(), b.Root())
}
