package tree

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformSize(t *testing.T) {
	cases := []struct{ d, n, want int }{
		{2, 0, 1}, {2, 1, 3}, {2, 2, 7}, {2, 3, 15},
		{3, 2, 13}, {4, 2, 21}, {5, 3, 156},
	}
	for _, c := range cases {
		if got := UniformSize(c.d, c.n); got != c.want {
			t.Errorf("UniformSize(%d,%d) = %d, want %d", c.d, c.n, got, c.want)
		}
	}
}

func TestUniformStructure(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		for n := 0; n <= 5; n++ {
			tr := Uniform(NOR, d, n, ConstLeaves(0))
			if err := tr.Validate(); err != nil {
				t.Fatalf("B(%d,%d): %v", d, n, err)
			}
			if tr.Len() != UniformSize(d, n) {
				t.Errorf("B(%d,%d): %d nodes, want %d", d, n, tr.Len(), UniformSize(d, n))
			}
			wantLeaves := 1
			for i := 0; i < n; i++ {
				wantLeaves *= d
			}
			if got := tr.NumLeaves(); got != wantLeaves {
				t.Errorf("B(%d,%d): %d leaves, want %d", d, n, got, wantLeaves)
			}
			if tr.Height != n {
				t.Errorf("B(%d,%d): height %d", d, n, tr.Height)
			}
		}
	}
}

func TestLeavesLeftToRight(t *testing.T) {
	tr := Uniform(NOR, 2, 3, func(i int) int32 { return int32(i % 2) })
	leaves := tr.Leaves()
	if len(leaves) != 8 {
		t.Fatalf("got %d leaves", len(leaves))
	}
	for i, l := range leaves {
		if tr.LeafValue(l) != int32(i%2) {
			t.Errorf("leaf %d: value %d, want %d (left-to-right assignment broken)", i, tr.LeafValue(l), i%2)
		}
	}
	// Left-to-right order means strictly increasing by (depth-first) id
	// within a uniform tree's leaf level.
	for i := 1; i < len(leaves); i++ {
		if leaves[i] <= leaves[i-1] {
			t.Errorf("leaves out of order at %d", i)
		}
	}
}

func TestEvaluateNOR(t *testing.T) {
	// ((0 0) (1 0)): left NOR(0,0)=1 -> root NOR sees a 1 -> 0.
	tr := FromNested(NOR, []any{[]any{0, 0}, []any{1, 0}})
	if got := tr.Evaluate(); got != 0 {
		t.Errorf("root = %d, want 0", got)
	}
	tr2 := FromNested(NOR, []any{[]any{1, 0}, []any{0, 1}})
	// both children NOR(...)=0 -> root = 1
	if got := tr2.Evaluate(); got != 1 {
		t.Errorf("root = %d, want 1", got)
	}
}

func TestEvaluateMinMax(t *testing.T) {
	// MAX( MIN(3,5), MIN(2,9) ) = max(3,2) = 3
	tr := FromNested(MinMax, []any{[]any{3, 5}, []any{2, 9}})
	if got := tr.Evaluate(); got != 3 {
		t.Errorf("root = %d, want 3", got)
	}
	// Height 3: MAX(MIN(MAX(1,2), MAX(7,0)), MIN(MAX(4,4), MAX(9,3)))
	tr3 := FromNested(MinMax, []any{
		[]any{[]any{1, 2}, []any{7, 0}},
		[]any{[]any{4, 4}, []any{9, 3}},
	})
	// = MAX( MIN(2,7), MIN(4,9) ) = MAX(2,4) = 4
	if got := tr3.Evaluate(); got != 4 {
		t.Errorf("root = %d, want 4", got)
	}
}

// naiveEval evaluates by direct recursion, as an independent oracle for
// the arena-order bottom-up Evaluate.
func naiveEval(t *Tree, v NodeID) int32 {
	nd := t.Node(v)
	if nd.NumChildren == 0 {
		return nd.Value
	}
	if t.Kind == NOR {
		for i := int32(0); i < nd.NumChildren; i++ {
			if naiveEval(t, nd.FirstChild+NodeID(i)) == 1 {
				return 0
			}
		}
		return 1
	}
	best := naiveEval(t, nd.FirstChild)
	for i := int32(1); i < nd.NumChildren; i++ {
		x := naiveEval(t, nd.FirstChild+NodeID(i))
		if t.IsMaxNode(v) == (x > best) {
			best = x
		}
	}
	return best
}

func TestEvaluateAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		d := 2 + rng.Intn(3)
		n := 1 + rng.Intn(5)
		nor := IIDNor(d, n, 0.5, rng.Int63())
		if got, want := nor.Evaluate(), naiveEval(nor, 0); got != want {
			t.Fatalf("NOR trial %d: Evaluate=%d naive=%d", trial, got, want)
		}
		mm := IIDMinMax(d, n, -50, 50, rng.Int63())
		if got, want := mm.Evaluate(), naiveEval(mm, 0); got != want {
			t.Fatalf("MinMax trial %d: Evaluate=%d naive=%d", trial, got, want)
		}
	}
}

func TestWorstBestCaseNORValues(t *testing.T) {
	for _, d := range []int{2, 3} {
		for n := 1; n <= 6; n++ {
			for _, rv := range []int32{0, 1} {
				w := WorstCaseNOR(d, n, rv)
				if got := w.Evaluate(); got != rv {
					t.Errorf("WorstCaseNOR(%d,%d,%d) evaluates to %d", d, n, rv, got)
				}
				b := BestCaseNOR(d, n, rv)
				if got := b.Evaluate(); got != rv {
					t.Errorf("BestCaseNOR(%d,%d,%d) evaluates to %d", d, n, rv, got)
				}
			}
		}
	}
}

func TestOrderChildrenPreservesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(3)
		n := 1 + rng.Intn(4)
		tr := IIDMinMax(d, n, 0, 1000, rng.Int63())
		want := tr.Evaluate()
		for _, best := range []bool{true, false} {
			o := OrderChildren(tr, best)
			if err := o.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := o.Evaluate(); got != want {
				t.Errorf("OrderChildren(best=%v) changed value %d -> %d", best, want, got)
			}
		}
	}
}

func TestPermutePreservesMultisetAndValueDistribution(t *testing.T) {
	tr := FromNested(MinMax, []any{[]any{3, 5}, []any{2, 9}})
	p := Permute(tr, 42)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != tr.Len() || p.Height != tr.Height {
		t.Errorf("Permute changed shape")
	}
	// The multiset of leaf values must be preserved.
	count := func(t *Tree) map[int32]int {
		m := map[int32]int{}
		for _, l := range t.Leaves() {
			m[t.LeafValue(l)]++
		}
		return m
	}
	a, b := count(tr), count(p)
	for k, v := range a {
		if b[k] != v {
			t.Errorf("leaf multiset changed: %v vs %v", a, b)
		}
	}
}

func TestPermuteNORPreservesValue(t *testing.T) {
	// NOR value is permutation-invariant (NOR is symmetric).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		tr := IIDNor(2+rng.Intn(2), 1+rng.Intn(5), 0.5, rng.Int63())
		p := Permute(tr, rng.Int63())
		if tr.Evaluate() != p.Evaluate() {
			t.Fatalf("trial %d: permutation changed NOR value", trial)
		}
	}
}

func TestNearUniformRespectsCorollary2(t *testing.T) {
	d, n := 4, 8
	alpha, beta := 0.5, 0.5
	tr := NearUniform(NOR, d, n, alpha, beta, 99, ConstLeaves(0))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := Summarize(tr)
	if s.MaxDegree > d {
		t.Errorf("degree %d exceeds d=%d", s.MaxDegree, d)
	}
	if s.Internal > 0 && float64(s.MinDegree) < alpha*float64(d) {
		t.Errorf("degree %d below alpha*d=%v", s.MinDegree, alpha*float64(d))
	}
	if s.Height > n {
		t.Errorf("height %d exceeds n=%d", s.Height, n)
	}
	if float64(s.MinLeafDepth) < beta*float64(n) {
		t.Errorf("leaf depth %d below beta*n=%v", s.MinLeafDepth, beta*float64(n))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := Uniform(NOR, 2, 2, ConstLeaves(0))
	tr.Nodes[1].Parent = 2
	if err := tr.Validate(); err == nil {
		t.Error("Validate missed broken parent link")
	}
	tr2 := Uniform(NOR, 2, 2, ConstLeaves(0))
	tr2.Height = 5
	if err := tr2.Validate(); err == nil {
		t.Error("Validate missed wrong height")
	}
	tr3 := Uniform(NOR, 2, 2, ConstLeaves(7))
	if err := tr3.Validate(); err == nil {
		t.Error("Validate missed non-Boolean NOR leaf")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := IIDMinMax(3, 3, -9, 9, 5)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.Evaluate() != tr.Evaluate() || got.Kind != tr.Kind {
		t.Error("round trip changed the tree")
	}
}

func TestParseSExpr(t *testing.T) {
	tr, err := ParseSExpr(MinMax, "((3 5) (2 9))")
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Evaluate(); got != 3 {
		t.Errorf("value %d, want 3", got)
	}
	for _, bad := range []string{"", "(", ")", "()", "(1 2", "1 2", "(x)"} {
		if _, err := ParseSExpr(MinMax, bad); err == nil {
			t.Errorf("ParseSExpr(%q) accepted invalid input", bad)
		}
	}
	// Single leaf is fine.
	one, err := ParseSExpr(MinMax, "42")
	if err != nil || one.Evaluate() != 42 {
		t.Errorf("single leaf: %v %v", one, err)
	}
}

func TestWriteDOT(t *testing.T) {
	tr := FromNested(MinMax, []any{[]any{1, 2}, 3})
	var buf bytes.Buffer
	if err := tr.WriteDOT(&buf, "t"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "MAX", "MIN", "n0 -> n1"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// Property: for random uniform NOR trees, ProofTreeSize is at most the
// number of leaves evaluated by any algorithm and at least 1; and for
// uniform trees it matches the closed form d^ceil(n/2) (root value 1) or
// d^floor(n/2) (root value 0) when the tree is a best-case instance.
func TestProofTreeClosedForm(t *testing.T) {
	pow := func(b, e int) int64 {
		r := int64(1)
		for i := 0; i < e; i++ {
			r *= int64(b)
		}
		return r
	}
	for _, d := range []int{2, 3} {
		for n := 0; n <= 6; n++ {
			t1 := WorstCaseNOR(d, n, 1)
			if got, want := ProofTreeSize(t1), pow(d, (n+1)/2); got != want {
				t.Errorf("proof tree B(%d,%d) val=1: %d, want %d", d, n, got, want)
			}
			t0 := WorstCaseNOR(d, n, 0)
			if got, want := ProofTreeSize(t0), pow(d, n/2); got != want {
				t.Errorf("proof tree B(%d,%d) val=0: %d, want %d", d, n, got, want)
			}
		}
	}
}

func TestProofTreeIsCertificate(t *testing.T) {
	// Property (testing/quick): the extracted proof tree leaves, with all
	// other leaves flipped adversarially, still force the same root value.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := IIDNor(2, 1+rng.Intn(5), 0.5, rng.Int63())
		want := tr.Evaluate()
		proof := ProofTree(tr)
		inProof := map[NodeID]bool{}
		for _, l := range proof {
			inProof[l] = true
		}
		// Flip every non-proof leaf both ways; value must not change.
		for _, flip := range []int32{0, 1} {
			cp := Uniform(NOR, 2, tr.Height, nil)
			for i, l := range tr.Leaves() {
				v := tr.LeafValue(l)
				if !inProof[l] {
					v = flip
				}
				cp.Nodes[cp.Leaves()[i]].Value = v
			}
			if cp.Evaluate() != want {
				return false
			}
		}
		return int64(len(proof)) == ProofTreeSize(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSkeletonClosedUnderAncestors(t *testing.T) {
	tr := IIDNor(2, 5, 0.5, 21)
	// Use the proof tree leaves as a stand-in evaluated set.
	ev := ProofTree(tr)
	h, mapping := Skeleton(tr, ev)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumLeaves() != len(ev) {
		t.Errorf("skeleton has %d leaves, evaluated %d", h.NumLeaves(), len(ev))
	}
	// Every mapped node's original must be an ancestor of some evaluated leaf.
	for newID, origID := range mapping {
		if origID == None {
			continue
		}
		ok := false
		for _, l := range ev {
			if tr.IsAncestor(origID, l) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("skeleton node %d (orig %d) not an ancestor of an evaluated leaf", newID, origID)
		}
	}
}

func TestPathToRootAndIsAncestor(t *testing.T) {
	tr := Uniform(NOR, 2, 3, ConstLeaves(0))
	leaf := tr.Leaves()[5]
	p := tr.PathToRoot(leaf)
	if len(p) != 4 || p[0] != leaf || p[len(p)-1] != 0 {
		t.Fatalf("bad path %v", p)
	}
	for _, a := range p {
		if !tr.IsAncestor(a, leaf) {
			t.Errorf("%d should be an ancestor of %d", a, leaf)
		}
	}
	if tr.IsAncestor(leaf, 0) {
		t.Error("leaf is not an ancestor of the root")
	}
	if !tr.IsAncestor(leaf, leaf) {
		t.Error("a node is an ancestor of itself (paper convention)")
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("double AddChildren", func() {
		b := NewBuilder(NOR)
		b.AddChildren(b.Root(), 2)
		b.AddChildren(b.Root(), 2)
	})
	mustPanic("zero children", func() {
		b := NewBuilder(NOR)
		b.AddChildren(b.Root(), 0)
	})
	mustPanic("bad uniform", func() { Uniform(NOR, 0, 3, nil) })
	mustPanic("nested junk", func() { FromNested(NOR, "x") })
}

func TestSummarize(t *testing.T) {
	tr := FromNested(MinMax, []any{[]any{1, 2, 3}, 7})
	s := Summarize(tr)
	if s.Nodes != 6 || s.Leaves != 4 || s.Internal != 2 || s.Height != 2 {
		t.Errorf("bad stats %+v", s)
	}
	if s.MaxDegree != 3 || s.MinDegree != 2 {
		t.Errorf("bad degrees %+v", s)
	}
	if s.RootValue != 7 { // MAX(MIN(1,2,3), 7) = MAX(1,7)
		t.Errorf("root value %d", s.RootValue)
	}
	if s.MinLeafDepth != 1 {
		t.Errorf("min leaf depth %d", s.MinLeafDepth)
	}
}

func TestEqual(t *testing.T) {
	a := IIDNor(2, 4, 0.5, 9)
	b := IIDNor(2, 4, 0.5, 9)
	if !Equal(a, b) {
		t.Error("identical generations should be equal")
	}
	c := IIDNor(2, 4, 0.5, 10)
	if Equal(a, c) {
		t.Error("different seeds should differ")
	}
	if Equal(a, IIDMinMax(2, 4, 0, 1, 9)) {
		t.Error("different kinds should differ")
	}
	if Equal(a, IIDNor(2, 3, 0.5, 9)) {
		t.Error("different heights should differ")
	}
	// Equal must be layout-insensitive: a structurally identical tree
	// built in a different arena order still compares equal.
	spec := []any{[]any{1, 0}, 1}
	x := FromNested(NOR, spec)
	y := FromNested(NOR, spec)
	if !Equal(x, y) {
		t.Error("rebuilt nested trees should be equal")
	}
}
