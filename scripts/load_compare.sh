#!/usr/bin/env bash
# load_compare.sh — regenerate the BENCH_serve.json trajectory.
#
# Two runs of the identical deterministic workload (random game,
# duplicate-heavy mix) land in one benchfmt document:
#   run 1  label=baseline  gtload -baseline: one independent
#                          SearchParallelTT per request over a shared
#                          table — no pool residency, no coalescing, no
#                          result cache;
#   run 2  label=serve     the same stream against a resident gtserve.
# Rows align by (workload, name, workers), so the closing gtstat call
# gates the service against the baseline on sustained QPS: the resident
# path must not be >15% slower, and on every host measured so far it is
# a multiple faster (EXPERIMENTS.md E15 has the numbers).
#
# Usage: scripts/load_compare.sh [out.json]
#   env: DURATION=5s WORKERS=8 POOLS=2 DEPTH=8
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_serve.json}
DUR=${DURATION:-5s}
WORKERS=${WORKERS:-8}
POOLS=${POOLS:-2}
DEPTH=${DEPTH:-8}
BIN=$(mktemp -d)
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/gtserve" ./cmd/gtserve
go build -o "$BIN/gtload" ./cmd/gtload
rm -f "$OUT"

echo "== run 1: per-request baseline (workers=$WORKERS) =="
"$BIN/gtload" -baseline -game random -depth "$DEPTH" -dup 0.75 -hot 16 \
    -clients 8 -duration "$DUR" -workers "$WORKERS" -label baseline -out "$OUT"

echo "== run 2: resident service (pools=$POOLS x workers=$WORKERS) =="
PORTFILE="$BIN/port"
"$BIN/gtserve" -addr 127.0.0.1:0 -portfile "$PORTFILE" \
    -pools "$POOLS" -workers "$WORKERS" 2>"$BIN/gtserve.log" &
SRV=$!
for _ in $(seq 1 100); do [ -s "$PORTFILE" ] && break; sleep 0.1; done
[ -s "$PORTFILE" ] || { echo "load_compare: server never bound"; cat "$BIN/gtserve.log"; exit 1; }
"$BIN/gtload" -url "http://$(tr -d '\n' <"$PORTFILE")" \
    -game random -depth "$DEPTH" -dup 0.75 -hot 16 \
    -clients 8 -duration "$DUR" -workers "$WORKERS" -label serve -out "$OUT"

kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
SRV=""
[ "$rc" -eq 0 ] || { echo "load_compare: drain exited $rc"; cat "$BIN/gtserve.log"; exit 1; }

echo "== gate: serve vs baseline on sustained QPS =="
go run ./cmd/gtstat -metric qps -threshold 0.15 "$OUT"
