#!/usr/bin/env bash
# load_compare.sh — regenerate the BENCH_serve.json trajectory.
#
# Four runs of the identical deterministic workload (random game,
# duplicate-heavy mix) land in one benchfmt document:
#   run 1  label=baseline  gtload -baseline: one independent
#                          SearchParallelTT per request over a shared
#                          table — no pool residency, no coalescing, no
#                          result cache;
#   run 2  label=shard1    a distributed ring of one coordinator + one
#                          shard worker process over TCP (rows keyed
#                          .../s1);
#   run 3  label=shard2    the same ring with two worker processes
#                          (rows keyed .../s2 — the /sN suffix keeps
#                          the distributed rows from colliding with the
#                          single-process ones);
#   run 4  label=serve     the same stream against a resident
#                          single-process gtserve.
# Rows align by (workload, name, workers[, shards]), so the closing
# gtstat call gates the service against the baseline on sustained QPS:
# the resident path must not be >15% slower, and on every host measured
# so far it is a multiple faster (EXPERIMENTS.md E15 has the numbers).
# The shard rows are history, not a gate here — the 2-worker-vs-1-worker
# scaling ratio is gated in shard_smoke.sh, and only on hosts with more
# than one CPU (on a single-CPU host both rings share the one core and
# the ratio is meaningless; EXPERIMENTS.md E20 discusses this).
#
# Usage: scripts/load_compare.sh [out.json]
#   env: DURATION=5s WORKERS=8 POOLS=2 DEPTH=8
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_serve.json}
DUR=${DURATION:-5s}
WORKERS=${WORKERS:-8}
POOLS=${POOLS:-2}
DEPTH=${DEPTH:-8}
BIN=$(mktemp -d)
PIDS=()
cleanup() {
    for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/gtserve" ./cmd/gtserve
go build -o "$BIN/gtload" ./cmd/gtload
rm -f "$OUT"

wait_file() {
    for _ in $(seq 1 100); do [ -s "$1" ] && return 0; sleep 0.1; done
    echo "load_compare: $1 never appeared" >&2
    return 1
}

stop_all() {
    for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; wait "$p" 2>/dev/null || true; done
    PIDS=()
    rm -f "$BIN"/*.shard "$BIN"/*.http "$BIN/port"
}

# run_ring <nworkers> — boot a coordinator + N shard workers, leave the
# coordinator URL in $URL.
run_ring() {
    local n=$1 procs peers=""
    procs=$(seq -s, 1 "$n")
    for i in $(seq 1 "$n"); do
        "$BIN/gtserve" -role worker -shard-proc "$i" -shard-procs "$procs" \
            -shard-listen 127.0.0.1:0 -shard-portfile "$BIN/w$i.shard" \
            -addr 127.0.0.1:0 -portfile "$BIN/w$i.http" \
            -workers "$WORKERS" 2>"$BIN/worker$i.log" &
        PIDS+=($!)
        wait_file "$BIN/w$i.shard"
        peers+="${peers:+,}$i=$(tr -d '\n' <"$BIN/w$i.shard")"
    done
    "$BIN/gtserve" -role coordinator -shard-peers "$peers" -shard-procs "$procs" \
        -shard-listen 127.0.0.1:0 -addr 127.0.0.1:0 -portfile "$BIN/c.http" \
        -pools "$POOLS" 2>"$BIN/coordinator.log" &
    PIDS+=($!)
    wait_file "$BIN/c.http"
    URL="http://$(tr -d '\n' <"$BIN/c.http")"
}

echo "== run 1: per-request baseline (workers=$WORKERS) =="
"$BIN/gtload" -baseline -game random -depth "$DEPTH" -dup 0.75 -hot 16 \
    -clients 8 -duration "$DUR" -workers "$WORKERS" -label baseline -out "$OUT"

echo "== run 2: distributed ring, 1 shard worker =="
run_ring 1
"$BIN/gtload" -url "$URL" -game random -depth "$DEPTH" -dup 0.75 -hot 16 \
    -clients 8 -duration "$DUR" -workers "$WORKERS" -shards 1 \
    -label shard1 -out "$OUT"
stop_all

echo "== run 3: distributed ring, 2 shard workers =="
run_ring 2
"$BIN/gtload" -url "$URL" -game random -depth "$DEPTH" -dup 0.75 -hot 16 \
    -clients 8 -duration "$DUR" -workers "$WORKERS" -shards 2 \
    -label shard2 -out "$OUT"
stop_all

echo "== run 4: resident service (pools=$POOLS x workers=$WORKERS) =="
PORTFILE="$BIN/port"
"$BIN/gtserve" -addr 127.0.0.1:0 -portfile "$PORTFILE" \
    -pools "$POOLS" -workers "$WORKERS" 2>"$BIN/gtserve.log" &
SRV=$!
PIDS+=($SRV)
wait_file "$PORTFILE" || { cat "$BIN/gtserve.log"; exit 1; }
"$BIN/gtload" -url "http://$(tr -d '\n' <"$PORTFILE")" \
    -game random -depth "$DEPTH" -dup 0.75 -hot 16 \
    -clients 8 -duration "$DUR" -workers "$WORKERS" -label serve -out "$OUT"

kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
PIDS=()
[ "$rc" -eq 0 ] || { echo "load_compare: drain exited $rc"; cat "$BIN/gtserve.log"; exit 1; }

echo "== gate: serve vs baseline on sustained QPS =="
go run ./cmd/gtstat -metric qps -threshold 0.15 "$OUT"
