#!/usr/bin/env bash
# serve_smoke.sh — CI gate for the resident search service.
#
# Boots a race-instrumented gtserve on an ephemeral port, then asserts
# the full contract end to end:
#   - exact values: a tic-tac-toe burst where every 200 must report the
#     known draw value (0) — wrong answers fail, not just errors;
#   - a mixed random workload completes against the same process;
#   - /metrics exposes the serve families next to the engine families
#     (scrape saved as a CI artifact);
#   - overload: an open-loop arrival rate far above capacity must be
#     shed with 429/503, not absorbed or crashed on;
#   - SIGTERM drains cleanly: in-flight answered, exit code 0.
#
# Artifacts land in serve-smoke-artifacts/ (override: ARTIFACT_DIR).
set -euo pipefail
cd "$(dirname "$0")/.."

ART=${ARTIFACT_DIR:-serve-smoke-artifacts}
mkdir -p "$ART"
BIN=$(mktemp -d)
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -race -o "$BIN/gtserve" ./cmd/gtserve
go build -race -o "$BIN/gtload" ./cmd/gtload

PORTFILE="$BIN/port"
"$BIN/gtserve" -addr 127.0.0.1:0 -portfile "$PORTFILE" \
    -pools 2 -workers 2 -queue 2 -cache 256 2>"$ART/gtserve.log" &
SRV=$!
for _ in $(seq 1 100); do [ -s "$PORTFILE" ] && break; sleep 0.1; done
[ -s "$PORTFILE" ] || { echo "serve_smoke: server never bound"; exit 1; }
URL="http://$(tr -d '\n' <"$PORTFILE")"

curl -fsS "$URL/healthz" >"$ART/healthz.json"

echo "== exact-value burst (ttt, depth 9: every answer must be the draw) =="
"$BIN/gtload" -url "$URL" -game ttt -depth 9 -clients 4 -duration 2s \
    -expect 0 | tee "$ART/gtload-ttt.txt"

echo "== p99 gate: two warm ttt runs, tail must not regress =="
# The burst above warmed the result cache, so these two identical runs
# measure the steady-state serving path (cache hit + HTTP) with
# thousands of samples each; gtstat gates tail latency between them — a
# second run more than 50% worse at p99 on the same warm process is a
# latency regression in the serving path, not workload noise. One
# client, deliberately: concurrent clients queueing on a shared runner
# put scheduler jitter in the tail (observed 2x between identical
# 4-client runs), while the single-client p99 is repeatable to ~15%.
# (The random workload below is the wrong place for this gate: tens of
# samples dominated by cold searches.)
"$BIN/gtload" -url "$URL" -game ttt -depth 9 -clients 1 -duration 2s \
    -expect 0 -out "$ART/serve-bench.json" >>"$ART/gtload-ttt.txt"
"$BIN/gtload" -url "$URL" -game ttt -depth 9 -clients 1 -duration 2s \
    -expect 0 -out "$ART/serve-bench.json" >>"$ART/gtload-ttt.txt"
go run ./cmd/gtstat -metric p99_ns -threshold 0.50 "$ART/serve-bench.json"

echo "== mixed random workload (closed loop) =="
"$BIN/gtload" -url "$URL" -game random -depth 7 -dup 0.75 -hot 8 \
    -clients 4 -duration 2s -workers 2 | tee "$ART/gtload-random.txt"

echo "== /metrics scrape =="
curl -fsS "$URL/metrics" >"$ART/metrics.prom"
grep -q '^gametree_serve_admitted_total ' "$ART/metrics.prom"
grep -q '^gametree_serve_requests_total ' "$ART/metrics.prom"
grep -q '^gametree_nodes_total ' "$ART/metrics.prom"

echo "== overload probe (open loop, far above 2-pool capacity) =="
"$BIN/gtload" -url "$URL" -game random -depth 9 -dup 0 -qps 500 \
    -maxinflight 128 -duration 2s -deadline 250ms \
    | tee "$ART/gtload-overload.txt" || true
shed=$(awk '/shed_429/ {
    for (i = 1; i <= NF; i++) {
        split($i, kv, "=");
        if (kv[1] == "shed_429" || kv[1] == "shed_503") s += kv[2]
    }
} END { print s + 0 }' "$ART/gtload-overload.txt")
[ "$shed" -gt 0 ] || { echo "serve_smoke: overload did not shed (shed=$shed)"; exit 1; }

echo "== SIGTERM drain =="
kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
SRV=""
[ "$rc" -eq 0 ] || { echo "serve_smoke: drain exited $rc"; cat "$ART/gtserve.log"; exit 1; }
grep -q 'clean drain' "$ART/gtserve.log"

echo "serve_smoke: PASS (shed=$shed)"
