#!/usr/bin/env bash
# shard_smoke.sh — CI gate for the distributed serving tier.
#
# Boots a race-instrumented three-process ring — two shard workers plus
# the coordinator with its HTTP API — and asserts the distributed
# contract end to end:
#   - ring agreement: every process must log the same [1 2] membership
#     (divergent rings silently break two-level TT ownership);
#   - exact values: a tic-tac-toe burst where every 200 must report the
#     known draw value (0), fanned out across both workers;
#   - a mixed random workload with duplicate traffic completes, and the
#     coordinator's /metrics shows shard task dispatch;
#   - distributed tracing: a burst of X-GT-Trace'd requests is fired and
#     gtobs pulls the merged ring trace WHILE the burst is running; the
#     merged view must contain spans from all three processes, at least
#     one request must have left spans in the coordinator AND both
#     workers, and the per-stage histograms must reach /metrics;
#   - crash recovery: worker 2 is killed with SIGKILL in the middle of a
#     burst; the burst must still complete with every value exact (the
#     coordinator reissues orphaned tasks to the survivor), a fresh
#     exact-value burst against the degraded ring must pass, and the
#     coordinator's death/recovery gauges must have registered the kill;
#   - rejoin: the dead worker is restarted (new ephemeral port, peer
#     table pointing only at the coordinator); the coordinator must admit
#     it under a new epoch (worker_rejoins_total), and a fresh burst must
#     route tasks to the rejoined process, not just the survivor;
#   - empty ring: both workers killed; the degraded gauge must flip, a
#     burst must still return exact values from the coordinator's local
#     fallback pool (gtload -chaos counts the degraded 200s), and the
#     gauge must close once a worker returns;
#   - scaling (only when the host has >1 CPU): the same CPU-bound
#     workload through a 2-worker ring must reach >= 1.3x the qps of a
#     1-worker ring. Single-CPU hosts skip the ratio, not the gate.
#
# Artifacts (process logs, /metrics scrapes from all three processes,
# gtload transcripts, the merged Chrome/Perfetto ring trace, the
# per-request latency breakdown, and the coordinator's JSONL access
# log) land in shard-smoke-artifacts/ (override: ARTIFACT_DIR).
set -euo pipefail
cd "$(dirname "$0")/.."

ART=${ARTIFACT_DIR:-shard-smoke-artifacts}
mkdir -p "$ART"
BIN=$(mktemp -d)
PIDS=()
cleanup() {
    for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -race -o "$BIN/gtserve" ./cmd/gtserve
go build -race -o "$BIN/gtload" ./cmd/gtload
go build -race -o "$BIN/gtobs" ./cmd/gtobs

wait_file() { # wait_file <path> [tries]
    local tries=${2:-100}
    for _ in $(seq 1 "$tries"); do [ -s "$1" ] && return 0; sleep 0.1; done
    echo "shard_smoke: $1 never appeared" >&2
    return 1
}

# qps <gtload transcript> — extract the completed-request rate.
qps() { awk -F'qps=' '/qps=/ {split($2, a, " "); print a[1]}' "$1"; }

start_worker() { # start_worker <proc> <procs> <workers-per-pool> [extra gtserve flags...]
    local proc=$1 procs=$2 wrk=$3
    shift 3
    rm -f "$BIN/w$proc.shard" "$BIN/w$proc.http"
    "$BIN/gtserve" -role worker -shard-proc "$proc" -shard-procs "$procs" \
        -shard-listen 127.0.0.1:0 -shard-portfile "$BIN/w$proc.shard" \
        -addr 127.0.0.1:0 -portfile "$BIN/w$proc.http" \
        -workers "$wrk" -table 65536 "$@" 2>>"$ART/worker$proc.log" &
    PIDS+=($!)
    eval "W${proc}PID=$!"
    wait_file "$BIN/w$proc.shard"
    wait_file "$BIN/w$proc.http"
}

start_coordinator() { # start_coordinator <peers> <procs>
    # The result cache is disabled so every completion below is a real
    # fan-out over the ring — with it on, the single-position ttt
    # workload would be answered from the coordinator's memory and the
    # crash gauntlet would prove nothing.
    "$BIN/gtserve" -role coordinator -shard-peers "$1" -shard-procs "$2" \
        -shard-listen 127.0.0.1:0 -shard-portfile "$BIN/c.shard" \
        -addr 127.0.0.1:0 -portfile "$BIN/c.http" \
        -pools 4 -cache -1 -task-timeout 500ms -dead-after 1s -local-fallback \
        -access-log "$ART/access.jsonl" 2>>"$ART/coordinator.log" &
    PIDS+=($!)
    CPID=$!
    wait_file "$BIN/c.http"
    URL="http://$(tr -d '\n' <"$BIN/c.http")"
}

echo "== boot: 2 workers + coordinator =="
start_worker 1 1,2 2
start_worker 2 1,2 2
W1HTTP="http://$(tr -d '\n' <"$BIN/w1.http")"
W2HTTP="http://$(tr -d '\n' <"$BIN/w2.http")"
start_coordinator "1=$(tr -d '\n' <"$BIN/w1.shard"),2=$(tr -d '\n' <"$BIN/w2.shard")" 1,2

grep -q 'ring \[1 2\]' "$ART/worker1.log" || { echo "shard_smoke: worker 1 ring mismatch"; exit 1; }
grep -q 'ring \[1 2\]' "$ART/worker2.log" || { echo "shard_smoke: worker 2 ring mismatch"; exit 1; }
curl -fsS "$URL/healthz" >"$ART/healthz.json"
grep -q '"backend":"shard"' "$ART/healthz.json"
curl -fsS "$W1HTTP/healthz" | grep -q '"role":"worker"'

echo "== exact-value burst (ttt, depth 9: every answer must be the draw) =="
"$BIN/gtload" -url "$URL" -game ttt -depth 9 -clients 4 -duration 2s \
    -expect 0 -shards 2 | tee "$ART/gtload-ttt.txt"

echo "== mixed random workload across the ring =="
"$BIN/gtload" -url "$URL" -game random -depth 7 -dup 0.5 -hot 8 \
    -clients 4 -duration 2s -shards 2 | tee "$ART/gtload-random.txt"

echo "== /metrics from all three processes =="
curl -fsS "$URL/metrics" >"$ART/coordinator-metrics.prom"
curl -fsS "$W1HTTP/metrics" >"$ART/worker1-metrics.prom"
curl -fsS "$W2HTTP/metrics" >"$ART/worker2-metrics.prom"
grep -q '^gametree_shard_tasks_total ' "$ART/coordinator-metrics.prom"
tasks=$(awk '/^gametree_shard_tasks_total /{print $2}' "$ART/coordinator-metrics.prom")
[ "$tasks" -gt 0 ] || { echo "shard_smoke: coordinator dispatched no tasks"; exit 1; }
grep -q '^gametree_shard_tasks_total ' "$ART/worker1-metrics.prom"
grep -q '^gametree_shard_rpc_ns_bucket' "$ART/coordinator-metrics.prom"

echo "== distributed trace: merged ring view pulled mid-burst =="
"$BIN/gtload" -url "$URL" -game random -depth 6 -dup 0 -clients 2 \
    -duration 3s -shards 2 -trace smoke >"$ART/gtload-traced.txt" 2>&1 &
LOAD=$!
sleep 1.5
# Pull a merged view WHILE the burst is running: every ring process
# must answer /debug/gttrace under load.
"$BIN/gtobs" -ring "$URL,$W1HTTP,$W2HTTP" -out "$ART/ring-midburst.trace.json" \
    -trace smoke >/dev/null 2>"$ART/gtobs-midburst.log" \
    || { cat "$ART/gtobs-midburst.log"; echo "shard_smoke: mid-burst gtobs pull failed"; exit 1; }
wait "$LOAD" || { cat "$ART/gtload-traced.txt"; echo "shard_smoke: traced burst failed"; exit 1; }
cat "$ART/gtload-traced.txt"
# The settled view is the artifact of record: Chrome/Perfetto file plus
# the per-request latency-breakdown table.
"$BIN/gtobs" -ring "$URL,$W1HTTP,$W2HTTP" -out "$ART/ring.trace.json" \
    -trace smoke >"$ART/ring-breakdown.txt" 2>"$ART/gtobs.log"
cat "$ART/gtobs.log"
grep -Eq 'merged [0-9]+ spans from procs \[0 1 2\]' "$ART/gtobs.log" \
    || { echo "shard_smoke: merged trace is missing a ring process"; exit 1; }
# At least one request must have left spans in ALL THREE processes —
# the coordinator's expand/route/fold plus compute spans on both
# workers (the depth-6 fan-out straddles both shards).
curl -fsS "$URL/debug/gttrace" >"$ART/gttrace-coordinator.json"
curl -fsS "$W1HTTP/debug/gttrace" >"$ART/gttrace-worker1.json"
curl -fsS "$W2HTTP/debug/gttrace" >"$ART/gttrace-worker2.json"
trace_ids() { grep -o '"trace":"smoke-[0-9]*"' "$1" | sort -u; }
common=$(comm -12 <(trace_ids "$ART/gttrace-coordinator.json") \
    <(comm -12 <(trace_ids "$ART/gttrace-worker1.json") \
                <(trace_ids "$ART/gttrace-worker2.json")))
[ -n "$common" ] || { echo "shard_smoke: no single request traced across all three processes"; exit 1; }
echo "shard_smoke: $(echo "$common" | wc -l) requests traced across all three processes"
grep -q '"name":"expand"' "$ART/ring.trace.json" \
    || { echo "shard_smoke: merged trace has no coordinator expand span"; exit 1; }
grep -q '"name":"compute"' "$ART/ring.trace.json" \
    || { echo "shard_smoke: merged trace has no worker compute span"; exit 1; }
# Per-stage latency histograms feed /metrics on the coordinator.
curl -fsS "$URL/metrics" >"$ART/coordinator-metrics-traced.prom"
grep -q 'gametree_shard_stage_ns_bucket{stage="rpc"' "$ART/coordinator-metrics-traced.prom" \
    || { echo "shard_smoke: stage histogram missing from /metrics"; exit 1; }
# The traced requests also flowed through the JSONL access log.
grep -q '"outcome":"search"' "$ART/access.jsonl" \
    || { echo "shard_smoke: access log missing search entries"; exit 1; }

echo "== kill -9 worker 2 mid-burst: values must stay exact =="
"$BIN/gtload" -url "$URL" -game ttt -depth 9 -clients 4 -duration 6s \
    -deadline 8s -expect 0 -shards 2 >"$ART/gtload-crash.txt" 2>&1 &
LOAD=$!
sleep 2
kill -9 "$W2PID"
rc=0
wait "$LOAD" || rc=$?
cat "$ART/gtload-crash.txt"
[ "$rc" -eq 0 ] || { echo "shard_smoke: burst failed after worker crash (rc=$rc)"; exit 1; }

echo "== degraded ring still serves exact values =="
"$BIN/gtload" -url "$URL" -game ttt -depth 9 -clients 2 -duration 1s \
    -deadline 8s -expect 0 -shards 2 | tee "$ART/gtload-degraded.txt"
curl -fsS "$URL/metrics" >"$ART/coordinator-metrics-postcrash.prom"
# Tasks in flight to the dead worker must have been reissued to the
# survivor — the burst staying exact is the effect, this is the cause.
reissues=$(awk '/^gametree_shard_reissues_total /{print $2}' "$ART/coordinator-metrics-postcrash.prom")
[ "${reissues:-0}" -gt 0 ] || { echo "shard_smoke: no task reissues after worker crash"; exit 1; }
# The liveness sweep must have registered the kill, and once the
# post-death RPC p99 settles under threshold the recovery gauge closes
# with the detection-to-settled wall time. The degraded burst above
# supplies the completions; give the gauge a beat to close.
deaths=0
for _ in $(seq 1 50); do
    curl -fsS "$URL/metrics" >"$ART/coordinator-metrics-postcrash.prom"
    deaths=$(awk '/^gametree_shard_worker_deaths_total /{print $2}' "$ART/coordinator-metrics-postcrash.prom")
    recovering=$(awk '/^gametree_shard_recovering /{print $2}' "$ART/coordinator-metrics-postcrash.prom")
    [ "${deaths:-0}" -gt 0 ] && [ "${recovering:-1}" -eq 0 ] && break
    # The gauge closes on RPC completions; keep a trickle flowing.
    curl -fsS -X POST "$URL/v1/search" \
        -d '{"game":"ttt","depth":5}' >/dev/null 2>&1 || true
    sleep 0.2
done
[ "${deaths:-0}" -gt 0 ] || { echo "shard_smoke: worker death never registered in deaths_total"; exit 1; }
recovery_ns=$(awk '/^gametree_shard_recovery_last_ns /{print $2}' "$ART/coordinator-metrics-postcrash.prom")
echo "shard_smoke: deaths=$deaths recovering=${recovering:-?} recovery_last_ns=${recovery_ns:-?}" \
    | tee "$ART/recovery.txt"

# metric <name> <scrape-file> — one coordinator metric value (empty if absent).
metric() { awk -v m="$1" '$1 == m {print $2}' "$2"; }

echo "== rejoin: restart worker 2, the ring must heal under a new epoch =="
# The restarted process binds a NEW ephemeral port and knows only the
# coordinator's address: the coordinator must learn the new route from
# the rejoin ping, admit the worker under a bumped epoch, and resume
# routing its shard there.
start_worker 2 1,2 2 -shard-peers "0=$(tr -d '\n' <"$BIN/c.shard")"
W2HTTP="http://$(tr -d '\n' <"$BIN/w2.http")"
rejoins=0
for _ in $(seq 1 100); do
    curl -fsS "$URL/metrics" >"$ART/coordinator-metrics-rejoin.prom"
    rejoins=$(metric gametree_shard_worker_rejoins_total "$ART/coordinator-metrics-rejoin.prom")
    [ "${rejoins:-0}" -ge 1 ] && break
    sleep 0.1
done
[ "${rejoins:-0}" -ge 1 ] || { echo "shard_smoke: restarted worker never rejoined"; exit 1; }
# Post-rejoin routing: a fresh burst must land tasks on the restarted
# worker (its counters start at zero), not just the survivor.
"$BIN/gtload" -url "$URL" -game random -depth 6 -dup 0 -clients 4 \
    -duration 2s -shards 2 | tee "$ART/gtload-rejoin.txt"
curl -fsS "$W2HTTP/metrics" >"$ART/worker2-rejoin-metrics.prom"
w2tasks=$(metric gametree_shard_tasks_total "$ART/worker2-rejoin-metrics.prom")
[ "${w2tasks:-0}" -gt 0 ] || { echo "shard_smoke: no tasks routed to the rejoined worker"; exit 1; }
epoch=$(metric gametree_shard_epoch "$ART/coordinator-metrics-rejoin.prom")
echo "shard_smoke: rejoins=$rejoins epoch=${epoch:-?}, rejoined worker served $w2tasks tasks"

echo "== empty ring: local fallback keeps answers exact, degraded gauge flips =="
kill -9 "$W1PID" "$W2PID" 2>/dev/null || true
# The failure detector (-dead-after 1s) must empty the live ring and
# flip the degraded gauge without any traffic prompting it.
degraded=0
for _ in $(seq 1 100); do
    curl -fsS "$URL/metrics" >"$ART/coordinator-metrics-empty.prom"
    degraded=$(metric gametree_shard_degraded "$ART/coordinator-metrics-empty.prom")
    [ "${degraded:-0}" -eq 1 ] && break
    sleep 0.1
done
[ "${degraded:-0}" -eq 1 ] || { echo "shard_smoke: degraded gauge never flipped with an empty ring"; exit 1; }
"$BIN/gtload" -url "$URL" -game ttt -depth 9 -clients 2 -duration 2s \
    -deadline 8s -expect 0 -shards 2 -chaos | tee "$ART/gtload-emptyring.txt"
grep -Eq 'degraded=[1-9]' "$ART/gtload-emptyring.txt" \
    || { echo "shard_smoke: empty-ring burst reported no degraded responses"; exit 1; }
degraded_tasks=$(metric gametree_shard_degraded_tasks_total <(curl -fsS "$URL/metrics"))
[ "${degraded_tasks:-0}" -gt 0 ] || { echo "shard_smoke: no leaves computed on the local fallback pool"; exit 1; }

echo "== recovery: a returning worker closes the degraded gauge =="
start_worker 1 1,2 2 -shard-peers "0=$(tr -d '\n' <"$BIN/c.shard")"
degraded=1
for _ in $(seq 1 100); do
    curl -fsS "$URL/metrics" >"$ART/coordinator-metrics-recovered.prom"
    degraded=$(metric gametree_shard_degraded "$ART/coordinator-metrics-recovered.prom")
    [ "${degraded:-1}" -eq 0 ] && break
    sleep 0.1
done
[ "${degraded:-1}" -eq 0 ] || { echo "shard_smoke: degraded gauge never closed after a worker returned"; exit 1; }
epoch=$(metric gametree_shard_epoch "$ART/coordinator-metrics-recovered.prom")
echo "shard_smoke: ring recovered, degraded=0 epoch=${epoch:-?}"

echo "== scaling ratio: 2-worker ring vs 1-worker ring (CPU-gated) =="
for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; wait "$p" 2>/dev/null || true; done
PIDS=()
if [ "$(nproc)" -ge 2 ]; then
    rm -f "$BIN"/*.shard "$BIN"/*.http
    # CPU-bound workload (no duplicate traffic, so the result cache and
    # the hot set don't mask worker throughput), one engine worker per
    # shard: the only variable between the runs is the worker count.
    start_worker 1 1 1
    start_coordinator "1=$(tr -d '\n' <"$BIN/w1.shard")" 1
    "$BIN/gtload" -url "$URL" -game random -depth 7 -dup 0 -clients 4 \
        -duration 3s -shards 1 >"$ART/gtload-s1.txt" 2>&1
    for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; wait "$p" 2>/dev/null || true; done
    PIDS=()

    rm -f "$BIN"/*.shard "$BIN"/*.http
    start_worker 1 1,2 1
    start_worker 2 1,2 1
    start_coordinator "1=$(tr -d '\n' <"$BIN/w1.shard"),2=$(tr -d '\n' <"$BIN/w2.shard")" 1,2
    "$BIN/gtload" -url "$URL" -game random -depth 7 -dup 0 -clients 4 \
        -duration 3s -shards 2 >"$ART/gtload-s2.txt" 2>&1

    q1=$(qps "$ART/gtload-s1.txt"); q2=$(qps "$ART/gtload-s2.txt")
    echo "shard_smoke: qps shards=1 $q1, shards=2 $q2"
    awk -v a="$q1" -v b="$q2" 'BEGIN { exit !(b >= 1.3 * a) }' \
        || { echo "shard_smoke: 2-worker ring under 1.3x of 1-worker ($q2 vs $q1)"; exit 1; }
else
    echo "shard_smoke: single CPU, skipping scaling ratio"
fi

echo "shard_smoke: PASS"
