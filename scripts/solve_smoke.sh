#!/usr/bin/env bash
# solve_smoke.sh — CI gate for the proof-number solver service.
#
# Boots a race-instrumented gtserve on an ephemeral port, then asserts
# the /v1/solve contract end to end:
#   - exact proofs: a table of Sprague-Grundy-known Nim/Kayles instances
#     where every verdict must match the oracle — wrong proofs fail;
#   - a concurrent solve burst (gtload -solve) completes with verdicts
#     consistent per position and nothing failed;
#   - mid-solve client cancel: a streaming solve of a deliberately huge
#     instance is dropped after the first progress frame, and the pns
#     counters on /metrics must stop advancing — the workers were
#     released promptly, not left grinding a dead request — with the
#     partial tree parked for resume;
#   - a follow-up solve on the freed pool completes (the token came
#     back);
#   - BENCH_prove.json: the gtprove suite (sequential PN, PN², pooled
#     PNS at 1/2/4 workers) runs to completion and lands as an artifact.
#
# Artifacts land in solve-smoke-artifacts/ (override: ARTIFACT_DIR).
set -euo pipefail
cd "$(dirname "$0")/.."

ART=${ARTIFACT_DIR:-solve-smoke-artifacts}
mkdir -p "$ART"
BIN=$(mktemp -d)
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -race -o "$BIN/gtserve" ./cmd/gtserve
go build -race -o "$BIN/gtload" ./cmd/gtload
# The bench binary is deliberately not race-built: its rows go into the
# artifact and race instrumentation would make the numbers meaningless.
go build -o "$BIN/gtprove" ./cmd/gtprove

PORTFILE="$BIN/port"
"$BIN/gtserve" -addr 127.0.0.1:0 -portfile "$PORTFILE" \
    -pools 2 -workers 2 -cache 256 2>"$ART/gtserve.log" &
SRV=$!
for _ in $(seq 1 100); do [ -s "$PORTFILE" ] && break; sleep 0.1; done
[ -s "$PORTFILE" ] || { echo "solve_smoke: server never bound"; exit 1; }
URL="http://$(tr -d '\n' <"$PORTFILE")"

solve() { # solve <game> <position> -> response body
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "{\"game\":\"$1\",\"position\":\"$2\"}" "$URL/v1/solve"
}

echo "== exact proofs (Sprague-Grundy oracle) =="
# nim: first player wins iff the heap xor is nonzero.
# kayles: same, over the period-12 Grundy sequence.
while read -r game pos want; do
    body=$(solve "$game" "$pos")
    echo "$game $pos -> $body" >>"$ART/verdicts.txt"
    echo "$body" | grep -q "\"verdict\":\"$want\"" || {
        echo "solve_smoke: $game $pos: want $want, got: $body"; exit 1; }
done <<'EOF'
nim 1,2,3 disproven
nim 1,2,4 proven
nim 5,5 disproven
nim 7 proven
kayles 1 proven
kayles 3,2,1 disproven
kayles 5,6 proven
EOF

echo "== concurrent solve burst =="
"$BIN/gtload" -url "$URL" -solve -game nim -clients 4 -duration 2s \
    -dup 0.5 -hot 8 | tee "$ART/gtload-solve.txt"
grep -q 'failed=0' "$ART/gtload-solve.txt" || {
    echo "solve_smoke: burst had failures"; exit 1; }

echo "== mid-solve client cancel =="
pn_nodes() {
    curl -fsS "$URL/metrics" | awk '/^gametree_pn_nodes_total /{print int($2)}'
}
# A four-heap Nim far beyond any smoke budget, streamed; curl gives up
# after 2 seconds, which closes the connection mid-solve.
curl -sS -m 2 -X POST -H 'Content-Type: application/json' \
    -d '{"game":"nim","position":"12,13,14,15","stream":true,"deadline_ms":25000,"progress_ms":50}' \
    "$URL/v1/solve" >"$ART/cancelled-stream.ndjson" || true
[ -s "$ART/cancelled-stream.ndjson" ] || {
    echo "solve_smoke: cancelled stream produced no frames"; exit 1; }
sleep 0.5
n0=$(pn_nodes)
sleep 1
n1=$(pn_nodes)
delta=$((n1 - n0))
# Released workers mean a flat pn-node counter; a leaked solve would
# still be expanding tens of thousands of nodes per second here.
[ "$delta" -lt 5000 ] || {
    echo "solve_smoke: pn nodes still advancing after cancel (delta=$delta)"; exit 1; }

curl -fsS "$URL/metrics" >"$ART/metrics.prom"
grep -q '^gametree_serve_solve_requests_total ' "$ART/metrics.prom"
parked=$(awk '/^gametree_serve_solve_partial_total /{print int($2)}' "$ART/metrics.prom")
[ "${parked:-0}" -ge 1 ] || {
    echo "solve_smoke: cancelled solve was not parked (partial=$parked)"; exit 1; }

echo "== post-cancel solve (pool token must be free) =="
body=$(solve nim 2,4,6)
echo "$body" | grep -q '"verdict":"disproven"' || {
    echo "solve_smoke: post-cancel solve wrong: $body"; exit 1; }

echo "== SIGTERM drain =="
kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
SRV=""
[ "$rc" -eq 0 ] || { echo "solve_smoke: drain exited $rc"; cat "$ART/gtserve.log"; exit 1; }

echo "== gtprove bench suite -> BENCH_prove.json artifact =="
"$BIN/gtprove" -bench -reps 2 -out "$ART/BENCH_prove.json" | tee "$ART/gtprove-bench.txt"

echo "solve_smoke: PASS (cancel delta=$delta, parked=$parked)"
